package mf

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloorCeilTruncRound(t *testing.T) {
	cases := []struct {
		in                        string
		floor, ceil, trunc, round float64
	}{
		{"2.5", 2, 3, 2, 3},
		{"-2.5", -3, -2, -2, -3},
		{"2.0", 2, 2, 2, 2},
		{"-7", -7, -7, -7, -7},
		{"0.49999999999999999999999999", 0, 1, 0, 0},
		{"123456789.00000000000000000001", 123456789, 123456790, 123456789, 123456789},
		{"-0.00000000000000000000000001", -1, 0, 0, 0},
	}
	for _, c := range cases {
		x := MustParse4[float64](c.in)
		if got := x.Floor(); got.Float() != c.floor {
			t.Errorf("Floor(%s) = %v, want %g", c.in, got, c.floor)
		}
		if got := x.Ceil(); got.Float() != c.ceil {
			t.Errorf("Ceil(%s) = %v, want %g", c.in, got, c.ceil)
		}
		if got := x.Trunc(); got.Float() != c.trunc {
			t.Errorf("Trunc(%s) = %v, want %g", c.in, got, c.trunc)
		}
		if got := x.Round(); got.Float() != c.round {
			t.Errorf("Round(%s) = %v, want %g", c.in, got, c.round)
		}
		// F2 and F3 agree on these decimals (all fit in two terms).
		x2 := MustParse2[float64](c.in)
		if got := x2.Floor(); got.Float() != c.floor {
			t.Errorf("F2 Floor(%s) = %v", c.in, got)
		}
		x3 := MustParse3[float64](c.in)
		if got := x3.Round(); got.Float() != c.round {
			t.Errorf("F3 Round(%s) = %v", c.in, got)
		}
	}
}

func TestFloorSubUlpBoundary(t *testing.T) {
	// n + ε where ε lives far below float64 resolution: floor must see it.
	n := New3(1024.0)
	justAbove := n.AddFloat(0x1p-90)
	justBelow := n.AddFloat(-0x1p-90)
	if got := justAbove.Floor(); !got.Eq(n) {
		t.Errorf("floor(1024+2^-90) = %v", got)
	}
	if got := justBelow.Floor(); !got.Eq(New3(1023.0)) {
		t.Errorf("floor(1024-2^-90) = %v", got)
	}
	if got := justBelow.Ceil(); !got.Eq(n) {
		t.Errorf("ceil(1024-2^-90) = %v", got)
	}
}

func TestModf(t *testing.T) {
	x := MustParse4[float64]("123.456")
	i, f := x.Modf()
	if i.Float() != 123 {
		t.Errorf("ipart = %v", i)
	}
	if got := i.Add(f); !got.Eq(x) {
		t.Errorf("ipart+frac != x: %v", got)
	}
	// Negative argument keeps sign conventions of math.Modf.
	x = MustParse4[float64]("-3.75")
	i, f = x.Modf()
	if i.Float() != -3 || f.Float() != -0.75 {
		t.Errorf("Modf(-3.75) = (%v, %v)", i, f)
	}
}

func TestRoundIdempotentOnIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := math.Trunc(rng.NormFloat64() * 1e6)
		x := New2(v)
		for _, got := range []Float64x2{x.Floor(), x.Ceil(), x.Trunc(), x.Round()} {
			if !got.Eq(x) {
				t.Fatalf("integral %g not fixed: %v", v, got)
			}
		}
	}
}
