package mf

import (
	"math"
	"math/rand"
	"testing"
)

func TestFloorCeilTruncRound(t *testing.T) {
	cases := []struct {
		in                        string
		floor, ceil, trunc, round float64
	}{
		{"2.5", 2, 3, 2, 3},
		{"-2.5", -3, -2, -2, -3},
		{"2.0", 2, 2, 2, 2},
		{"-7", -7, -7, -7, -7},
		{"0.49999999999999999999999999", 0, 1, 0, 0},
		{"123456789.00000000000000000001", 123456789, 123456790, 123456789, 123456789},
		{"-0.00000000000000000000000001", -1, 0, 0, 0},
	}
	for _, c := range cases {
		x := MustParse4[float64](c.in)
		if got := x.Floor(); got.Float() != c.floor {
			t.Errorf("Floor(%s) = %v, want %g", c.in, got, c.floor)
		}
		if got := x.Ceil(); got.Float() != c.ceil {
			t.Errorf("Ceil(%s) = %v, want %g", c.in, got, c.ceil)
		}
		if got := x.Trunc(); got.Float() != c.trunc {
			t.Errorf("Trunc(%s) = %v, want %g", c.in, got, c.trunc)
		}
		if got := x.Round(); got.Float() != c.round {
			t.Errorf("Round(%s) = %v, want %g", c.in, got, c.round)
		}
		// F2 and F3 agree on these decimals (all fit in two terms).
		x2 := MustParse2[float64](c.in)
		if got := x2.Floor(); got.Float() != c.floor {
			t.Errorf("F2 Floor(%s) = %v", c.in, got)
		}
		x3 := MustParse3[float64](c.in)
		if got := x3.Round(); got.Float() != c.round {
			t.Errorf("F3 Round(%s) = %v", c.in, got)
		}
	}
}

func TestFloorSubUlpBoundary(t *testing.T) {
	// n + ε where ε lives far below float64 resolution: floor must see it.
	n := New3(1024.0)
	justAbove := n.AddFloat(0x1p-90)
	justBelow := n.AddFloat(-0x1p-90)
	if got := justAbove.Floor(); !got.Eq(n) {
		t.Errorf("floor(1024+2^-90) = %v", got)
	}
	if got := justBelow.Floor(); !got.Eq(New3(1023.0)) {
		t.Errorf("floor(1024-2^-90) = %v", got)
	}
	if got := justBelow.Ceil(); !got.Eq(n) {
		t.Errorf("ceil(1024-2^-90) = %v", got)
	}
}

func TestModf(t *testing.T) {
	x := MustParse4[float64]("123.456")
	i, f := x.Modf()
	if i.Float() != 123 {
		t.Errorf("ipart = %v", i)
	}
	if got := i.Add(f); !got.Eq(x) {
		t.Errorf("ipart+frac != x: %v", got)
	}
	// Negative argument keeps sign conventions of math.Modf.
	x = MustParse4[float64]("-3.75")
	i, f = x.Modf()
	if i.Float() != -3 || f.Float() != -0.75 {
		t.Errorf("Modf(-3.75) = (%v, %v)", i, f)
	}
}

// TestRoundNegativeZero: ±0 is integral; every directed rounding must
// return a value equal to zero (the sign of the zero is not specified,
// but the result must not drift to ±1).
func TestRoundNegativeZero(t *testing.T) {
	negz := math.Copysign(0, -1)
	for _, x := range []Float64x2{New2(0.0), New2(negz)} {
		for name, got := range map[string]Float64x2{
			"Floor": x.Floor(), "Ceil": x.Ceil(), "Trunc": x.Trunc(), "Round": x.Round(),
		} {
			if !got.IsZero() {
				t.Errorf("%s(%v) = %v, want zero", name, x, got)
			}
		}
	}
	// F3/F4 as well.
	if got := New3(negz).Floor(); !got.IsZero() {
		t.Errorf("F3 Floor(-0) = %v", got)
	}
	if got := New4(negz).Round(); !got.IsZero() {
		t.Errorf("F4 Round(-0) = %v", got)
	}
}

// TestRoundTieEdges: exact ties round away from zero; values one tiny
// expansion-ulp off a tie (far below float64 resolution) round toward
// the nearest integer. This is the edge the cascading Floor must get
// right: the tie-breaking information lives in a tail term.
func TestRoundTieEdges(t *testing.T) {
	eps := 0x1p-100
	cases := []struct {
		x    Float64x3
		want float64
	}{
		{New3(2.5), 3}, // exact tie, away from zero
		{New3(-2.5), -3},
		{New3(2.5).AddFloat(eps), 3},  // just above the tie
		{New3(2.5).AddFloat(-eps), 2}, // just below: tail term decides
		{New3(-2.5).AddFloat(-eps), -3},
		{New3(-2.5).AddFloat(eps), -2},
		{New3(0.5), 1},
		{New3(-0.5), -1},
		{New3(0.5).AddFloat(-eps), 0},
		{New3(-0.5).AddFloat(eps), 0},
	}
	for _, c := range cases {
		if got := c.x.Round(); got.Float() != c.want {
			t.Errorf("Round(%v) = %v, want %g", c.x, got, c.want)
		}
	}
}

// TestRoundLastUlpBelowInteger: n - 2^-k for k far beyond the leading
// term's precision — Floor must see the negative tail and step down,
// Ceil must absorb it, and Trunc must match the sign convention. The
// last-ulp case uses the smallest subnormal as the tail.
func TestRoundLastUlpBelowInteger(t *testing.T) {
	n := New2(1.0)
	// 1 - 2^-540: representable as the pair (1, -0x1p-540).
	justBelow := n.AddFloat(-0x1p-540)
	if got := justBelow.Floor(); got.Float() != 0 {
		t.Errorf("Floor(1 - 2^-540) = %v, want 0", got)
	}
	if got := justBelow.Ceil(); !got.Eq(n) {
		t.Errorf("Ceil(1 - 2^-540) = %v, want 1", got)
	}
	if got := justBelow.Trunc(); got.Float() != 0 {
		t.Errorf("Trunc(1 - 2^-540) = %v, want 0", got)
	}
	if got := justBelow.Round(); !got.Eq(n) {
		t.Errorf("Round(1 - 2^-540) = %v, want 1", got)
	}
	// The negative mirror: -(1 - eps) truncates toward zero.
	if got := justBelow.Neg().Trunc(); got.Float() != 0 {
		t.Errorf("Trunc(-(1 - 2^-540)) = %v, want 0", got)
	}
	if got := justBelow.Neg().Floor(); got.Float() != -1 {
		t.Errorf("Floor(-(1 - 2^-540)) = %v, want -1", got)
	}
	// F4 with the tail at the very bottom of the float64 range (within
	// the format's span from a 2^-700-scale lead).
	tiny := New4(0x1p-700).AddFloat(-5e-324)
	if got := tiny.Floor(); got.Float() != 0 {
		t.Errorf("Floor(2^-700 - eps) = %v, want 0", got)
	}
	if got := tiny.Ceil(); got.Float() != 1 {
		t.Errorf("Ceil(2^-700 - eps) = %v, want 1", got)
	}
}

// TestRoundHugeIntegerBoundary: around 2^52 (the last float64 with a
// fractional neighbor), half-ulp ties still follow away-from-zero.
func TestRoundHugeIntegerBoundary(t *testing.T) {
	half := 0x1p52 - 0.5 // exactly representable: 4503599627370495.5
	x := New2(half)
	if got := x.Round(); got.Float() != 0x1p52 {
		t.Errorf("Round(2^52 - 0.5) = %v, want 2^52", got)
	}
	if got := x.Floor(); got.Float() != 0x1p52-1 {
		t.Errorf("Floor(2^52 - 0.5) = %v", got)
	}
	if got := x.Neg().Round(); got.Float() != -0x1p52 {
		t.Errorf("Round(-(2^52 - 0.5)) = %v, want -2^52", got)
	}
	// Beyond 2^53 every float64 is integral, but a tail term can still
	// carry a fraction: 2^60 + 0.5 lives in two terms.
	y := New3(0x1p60).AddFloat(0.5)
	if got := y.Round(); !got.Eq(New3(0x1p60).AddFloat(1)) {
		t.Errorf("Round(2^60 + 0.5) = %v, want 2^60 + 1", got)
	}
	if got := y.Floor(); !got.Eq(New3(0x1p60)) {
		t.Errorf("Floor(2^60 + 0.5) = %v, want 2^60", got)
	}
}

func TestRoundIdempotentOnIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := math.Trunc(rng.NormFloat64() * 1e6)
		x := New2(v)
		for _, got := range []Float64x2{x.Floor(), x.Ceil(), x.Trunc(), x.Round()} {
			if !got.Eq(x) {
				t.Fatalf("integral %g not fixed: %v", v, got)
			}
		}
	}
}
