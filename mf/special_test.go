package mf_test

// Table-driven conformance tests for the §4.4 special-value contract.
//
// The paper's branch-free networks have no IEEE-754 special-case paths:
// renormalization chains every term through the leading one, so a NaN or
// Inf appearing anywhere — an operand term, an overflowed product, the
// machine reciprocal of zero — poisons the whole expansion. The library
// contract is therefore a uniform COLLAPSE: any operation whose IEEE
// analogue would signal (division by zero, Inf or NaN operands, square
// root of a negative) returns an expansion whose every term is NaN.
// There is no Inf propagation and no signed-zero algebra beyond the two
// cases that stay exactly defined: 0/a = 0 and √(±0) = 0.
//
// internal/diffuzz enforces the same matrix on fuzzed inputs; this file
// pins the exact table so a behavior change is caught by plain `go test`.

import (
	"math"
	"testing"

	"multifloats/mf"
)

// specialOps is the method surface the matrix exercises, implemented by
// all three expansion widths.
type specialOps[E any] interface {
	Add(E) E
	Sub(E) E
	Mul(E) E
	Div(E) E
	Recip() E
	Sqrt() E
	Rsqrt() E
	IsNaN() bool
	IsZero() bool
}

type specialCase struct {
	name string
	x, y float64 // leading terms; y is NaN for unary ops
	op   string  // add, sub, mul, div, recip, sqrt, rsqrt
	want string  // "nan" or "zero"
}

var inf = math.Inf(1)

var specialMatrix = []specialCase{
	// Division: zero or non-finite anywhere → NaN; 0/a stays exact.
	{"1/0 -> NaN", 1, 0, "div", "nan"},
	{"1/-0 -> NaN", 1, math.Copysign(0, -1), "div", "nan"},
	{"0/3 -> 0", 0, 3, "div", "zero"},
	{"-0/3 -> 0", math.Copysign(0, -1), 3, "div", "zero"},
	{"Inf/3 -> NaN", inf, 3, "div", "nan"},
	{"3/Inf -> NaN", 3, inf, "div", "nan"},
	{"-Inf/3 -> NaN", -inf, 3, "div", "nan"},
	{"NaN/3 -> NaN", math.NaN(), 3, "div", "nan"},
	{"3/NaN -> NaN", 3, math.NaN(), "div", "nan"},
	{"Inf/Inf -> NaN", inf, inf, "div", "nan"},
	{"0/0 -> NaN", 0, 0, "div", "nan"},

	// Reciprocal follows division's divisor rules.
	{"recip(0) -> NaN", 0, math.NaN(), "recip", "nan"},
	{"recip(-0) -> NaN", math.Copysign(0, -1), math.NaN(), "recip", "nan"},
	{"recip(Inf) -> NaN", inf, math.NaN(), "recip", "nan"},
	{"recip(NaN) -> NaN", math.NaN(), math.NaN(), "recip", "nan"},

	// Square root: negative and non-finite signal; ±0 stays defined.
	{"sqrt(-4) -> NaN", -4, math.NaN(), "sqrt", "nan"},
	{"sqrt(0) -> 0", 0, math.NaN(), "sqrt", "zero"},
	{"sqrt(-0) -> 0", math.Copysign(0, -1), math.NaN(), "sqrt", "zero"},
	{"sqrt(Inf) -> NaN", inf, math.NaN(), "sqrt", "nan"},
	{"sqrt(NaN) -> NaN", math.NaN(), math.NaN(), "sqrt", "nan"},
	{"rsqrt(0) -> NaN", 0, math.NaN(), "rsqrt", "nan"},
	{"rsqrt(-1) -> NaN", -1, math.NaN(), "rsqrt", "nan"},
	{"rsqrt(Inf) -> NaN", inf, math.NaN(), "rsqrt", "nan"},

	// Add/Sub/Mul: ANY non-finite operand collapses (unlike IEEE, where
	// Inf+1 = Inf — renormalization computes Inf-Inf internally).
	{"Inf+1 -> NaN", inf, 1, "add", "nan"},
	{"1+(-Inf) -> NaN", 1, -inf, "add", "nan"},
	{"Inf-Inf -> NaN", inf, inf, "sub", "nan"},
	{"NaN+1 -> NaN", math.NaN(), 1, "add", "nan"},
	{"Inf*0 -> NaN", inf, 0, "mul", "nan"},
	{"Inf*3 -> NaN", inf, 3, "mul", "nan"},
	{"NaN*3 -> NaN", math.NaN(), 3, "mul", "nan"},

	// Signed-zero sums collapse to exact zero.
	{"-0+0 -> 0", math.Copysign(0, -1), 0, "add", "zero"},
	{"-0 - 0 -> 0", math.Copysign(0, -1), 0, "sub", "zero"},
}

func runSpecialMatrix[E specialOps[E]](t *testing.T, width string, mk func(float64) E) {
	t.Helper()
	for _, c := range specialMatrix {
		x := mk(c.x)
		var got E
		switch c.op {
		case "add":
			got = x.Add(mk(c.y))
		case "sub":
			got = x.Sub(mk(c.y))
		case "mul":
			got = x.Mul(mk(c.y))
		case "div":
			got = x.Div(mk(c.y))
		case "recip":
			got = x.Recip()
		case "sqrt":
			got = x.Sqrt()
		case "rsqrt":
			got = x.Rsqrt()
		default:
			t.Fatalf("unknown op %q", c.op)
		}
		switch c.want {
		case "nan":
			if !got.IsNaN() {
				t.Errorf("%s %s: got %v, want NaN collapse", width, c.name, got)
			}
		case "zero":
			if got.IsNaN() || !got.IsZero() {
				t.Errorf("%s %s: got %v, want exact zero", width, c.name, got)
			}
		}
	}
}

func TestSpecialValueMatrix(t *testing.T) {
	runSpecialMatrix(t, "F2", func(v float64) mf.Float64x2 { return mf.New2(v) })
	runSpecialMatrix(t, "F3", func(v float64) mf.Float64x3 { return mf.New3(v) })
	runSpecialMatrix(t, "F4", func(v float64) mf.Float64x4 { return mf.New4(v) })
}

// TestSpecialCollapseIsTotal checks the collapse covers every term, not
// just the leading one: downstream code that inspects tail terms must
// not see stale finite values after a signaling operation.
func TestSpecialCollapseIsTotal(t *testing.T) {
	q := mf.New4(1.0).Div(mf.New4(0.0))
	for i, term := range q {
		if !math.IsNaN(term) {
			t.Errorf("1/0 term %d = %g, want NaN", i, term)
		}
	}
	s := mf.New3(-1.0).Sqrt()
	for i, term := range s {
		if !math.IsNaN(term) {
			t.Errorf("sqrt(-1) term %d = %g, want NaN", i, term)
		}
	}
}

// TestNaNPoisonsDeepTerm checks that a NaN hidden in a TAIL term (not
// the lead) still poisons arithmetic: the renormalization chain touches
// every term.
func TestNaNPoisonsDeepTerm(t *testing.T) {
	x := mf.Float64x4{1, math.NaN(), 0, 0}
	if got := x.Add(mf.New4(1.0)); !got.IsNaN() {
		t.Errorf("(1, NaN, 0, 0) + 1 = %v, want NaN", got)
	}
	if got := x.Mul(mf.New4(2.0)); !got.IsNaN() {
		t.Errorf("(1, NaN, 0, 0) * 2 = %v, want NaN", got)
	}
}

// ----------------------- elementary-function algebraic properties -----------
//
// The identities below hold BIT-EXACTLY, not just within the error
// bound, because the kernels are branch-free symmetric networks: sign
// handling in the trig reduction is a multiplication, Hypot orders its
// legs by magnitude before squaring, and power-of-two scaling touches
// only exponents. A future "optimization" that breaks exactness here
// (say, an early-exit branch on the argument sign) is a contract change
// and must update these tests deliberately.

// propArgs spans the quadrants, both trig reduction regimes (fast path
// below 1e22, Payne–Hanek above), and the worst-case double for the
// 2/π reduction.
var propArgs = []float64{
	0.5, 1.0, math.Pi / 3, 3.0, 1e10, 1e22, 4.7e80, 1e300,
	math.Ldexp(6381956970095103, 797),
}

func TestSinOddCosEven(t *testing.T) {
	for _, a := range propArgs {
		x4, n4 := mf.New4(a), mf.New4(-a)
		s, c := x4.SinCos()
		ns, nc := n4.SinCos()
		for i := 0; i < 4; i++ {
			if math.Float64bits(ns[i]) != math.Float64bits(-s[i]) {
				t.Errorf("F4 sin(-%g) term %d: %g, want %g (odd symmetry)", a, i, ns[i], -s[i])
			}
			if math.Float64bits(nc[i]) != math.Float64bits(c[i]) {
				t.Errorf("F4 cos(-%g) term %d: %g, want %g (even symmetry)", a, i, nc[i], c[i])
			}
		}
		s2, ns2 := mf.New2(a).Sin(), mf.New2(-a).Sin()
		if math.Float64bits(ns2[0]) != math.Float64bits(-s2[0]) || math.Float64bits(ns2[1]) != math.Float64bits(-s2[1]) {
			t.Errorf("F2 sin(-%g) = %v, want -Sin(%g) bit-exactly", a, ns2, a)
		}
	}
}

// TestPythagoreanIdentity checks sin²x + cos²x ≈ 1 to roughly the full
// working precision at every width, including arguments that exercise
// the Payne–Hanek path — an oracle-free cross-check of the reduction
// (FuzzSinCos asserts the same identity on fuzzed expansions).
func TestPythagoreanIdentity(t *testing.T) {
	bound := map[int]float64{2: 0x1p-88, 3: 0x1p-138, 4: 0x1p-188}
	for _, a := range propArgs {
		s2, c2 := mf.New2(a).SinCos()
		s3, c3 := mf.New3(a).SinCos()
		s4, c4 := mf.New4(a).SinCos()
		dev := map[int]float64{
			2: math.Abs(s2.Mul(s2).Add(c2.Mul(c2)).Sub(mf.New2(1.0))[0]),
			3: math.Abs(s3.Mul(s3).Add(c3.Mul(c3)).Sub(mf.New3(1.0))[0]),
			4: math.Abs(s4.Mul(s4).Add(c4.Mul(c4)).Sub(mf.New4(1.0))[0]),
		}
		for n := 2; n <= 4; n++ {
			if !(dev[n] <= bound[n]) {
				t.Errorf("width %d, x = %g: |sin²+cos² - 1| = %g > %g", n, a, dev[n], bound[n])
			}
		}
	}
}

// TestExpLogRoundTrip checks exp(log x) ≈ x in relative terms. The
// round trip's error is the absolute error of log x fed through exp,
// so the bounds sit ~10 bits below the per-op bounds in TESTING.md.
func TestExpLogRoundTrip(t *testing.T) {
	args := []float64{0.5, 1.0 + 0x1p-40, math.E, 42.0, 1e-200, 1e200, 0x1p-900}
	bound := map[int]float64{2: 0x1p-80, 3: 0x1p-130, 4: 0x1p-180}
	for _, a := range args {
		rel := map[int]float64{}
		{
			x := mf.New2(a)
			rel[2] = math.Abs(x.Log().Exp().Sub(x)[0] / a)
		}
		{
			x := mf.New3(a)
			rel[3] = math.Abs(x.Log().Exp().Sub(x)[0] / a)
		}
		{
			x := mf.New4(a)
			rel[4] = math.Abs(x.Log().Exp().Sub(x)[0] / a)
		}
		for n := 2; n <= 4; n++ {
			if !(rel[n] <= bound[n]) {
				t.Errorf("width %d, x = %g: |exp(log x)/x - 1| = %g > %g", n, a, rel[n], bound[n])
			}
		}
	}
}

// TestHypotInvariance pins Hypot's leg-permutation and power-of-two
// scale invariance bit-exactly: the kernel orders legs by magnitude, so
// argument order cannot matter, and 2^k scaling is exponent-only.
func TestHypotInvariance(t *testing.T) {
	pairs := [][2]float64{{3, 4}, {1e200, 1e-200}, {5e150, 5e150}, {1, 1e-30}, {7e-250, 2e-251}}
	for _, p := range pairs {
		x, y := mf.New4(p[0]), mf.New4(p[1])
		h, hp := x.Hypot(y), y.Hypot(x)
		for i := 0; i < 4; i++ {
			if math.Float64bits(h[i]) != math.Float64bits(hp[i]) {
				t.Errorf("Hypot(%g, %g) term %d differs under permutation: %g vs %g", p[0], p[1], i, h[i], hp[i])
			}
		}
		hs := mf.New4(p[0] * 0x1p50).Hypot(mf.New4(p[1] * 0x1p50))
		for i := 0; i < 4; i++ {
			if math.Float64bits(hs[i]) != math.Float64bits(h[i]*0x1p50) {
				t.Errorf("Hypot(2^50·%g, 2^50·%g) term %d: %g, want %g (scale invariance)", p[0], p[1], i, hs[i], h[i]*0x1p50)
			}
		}
	}
}

// TestAtan2QuadrantSigns pins the Atan2 quadrant table, including the
// zero rows. Note the deviation from IEEE atan2: per the §4.4 contract
// there is no signed-zero algebra, so the sign of a zero y is dropped —
// atan2(±0, x<0) is +π (IEEE: ±π matching y's sign) and every
// atan2(±0, ±0) is exact 0 (IEEE: ±0 or ±π).
func TestAtan2QuadrantSigns(t *testing.T) {
	negz := math.Copysign(0, -1)
	cases := []struct {
		y, x float64
		want float64 // expected lead (the double-rounded value); "zero" when 0
	}{
		{0, 1, 0}, {negz, 1, 0},
		{0, -1, math.Pi}, {negz, -1, math.Pi}, // IEEE would give -π for y = -0
		{0, 0, 0}, {negz, 0, 0}, {0, negz, 0}, {negz, negz, 0}, // IEEE: ±0 or ±π
		{1, 0, math.Pi / 2}, {-1, 0, -math.Pi / 2},
		{1, negz, math.Pi / 2}, {-1, negz, -math.Pi / 2},
		{1, 1, math.Pi / 4}, {1, -1, 3 * math.Pi / 4},
		{-1, 1, -math.Pi / 4}, {-1, -1, -3 * math.Pi / 4},
	}
	for _, c := range cases {
		got := mf.Atan2F4(mf.New4(c.y), mf.New4(c.x))
		if got.IsNaN() {
			t.Errorf("Atan2(%v, %v) collapsed to NaN", c.y, c.x)
			continue
		}
		if c.want == 0 {
			if !got.IsZero() {
				t.Errorf("Atan2(%v, %v) = %v, want exact zero", c.y, c.x, got)
			}
			continue
		}
		// The lead must be the argument's double-rounded angle exactly
		// (all table entries are ≥ 2^51 ulps from a double boundary).
		if math.Float64bits(got[0]) != math.Float64bits(c.want) {
			t.Errorf("Atan2(%v, %v) lead = %v, want %v", c.y, c.x, got[0], c.want)
		}
		// Odd symmetry in y is bit-exact across all four terms: the
		// quadrant fix multiplies by the sign rather than branching.
		// (Not at y = 0, where the sign of zero is dropped and both
		// zeros land on the same +π result — the rows above pin that.)
		if c.y == 0 {
			continue
		}
		neg := mf.Atan2F4(mf.New4(-c.y), mf.New4(c.x))
		want := got.Neg()
		for i := 0; i < 4; i++ {
			if math.Float64bits(neg[i]) != math.Float64bits(want[i]) {
				t.Errorf("Atan2(%v, %v) term %d: %g, want %g (odd symmetry in y)", -c.y, c.x, i, neg[i], want[i])
			}
		}
	}
}
