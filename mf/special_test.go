package mf_test

// Table-driven conformance tests for the §4.4 special-value contract.
//
// The paper's branch-free networks have no IEEE-754 special-case paths:
// renormalization chains every term through the leading one, so a NaN or
// Inf appearing anywhere — an operand term, an overflowed product, the
// machine reciprocal of zero — poisons the whole expansion. The library
// contract is therefore a uniform COLLAPSE: any operation whose IEEE
// analogue would signal (division by zero, Inf or NaN operands, square
// root of a negative) returns an expansion whose every term is NaN.
// There is no Inf propagation and no signed-zero algebra beyond the two
// cases that stay exactly defined: 0/a = 0 and √(±0) = 0.
//
// internal/diffuzz enforces the same matrix on fuzzed inputs; this file
// pins the exact table so a behavior change is caught by plain `go test`.

import (
	"math"
	"testing"

	"multifloats/mf"
)

// specialOps is the method surface the matrix exercises, implemented by
// all three expansion widths.
type specialOps[E any] interface {
	Add(E) E
	Sub(E) E
	Mul(E) E
	Div(E) E
	Recip() E
	Sqrt() E
	Rsqrt() E
	IsNaN() bool
	IsZero() bool
}

type specialCase struct {
	name string
	x, y float64 // leading terms; y is NaN for unary ops
	op   string  // add, sub, mul, div, recip, sqrt, rsqrt
	want string  // "nan" or "zero"
}

var inf = math.Inf(1)

var specialMatrix = []specialCase{
	// Division: zero or non-finite anywhere → NaN; 0/a stays exact.
	{"1/0 -> NaN", 1, 0, "div", "nan"},
	{"1/-0 -> NaN", 1, math.Copysign(0, -1), "div", "nan"},
	{"0/3 -> 0", 0, 3, "div", "zero"},
	{"-0/3 -> 0", math.Copysign(0, -1), 3, "div", "zero"},
	{"Inf/3 -> NaN", inf, 3, "div", "nan"},
	{"3/Inf -> NaN", 3, inf, "div", "nan"},
	{"-Inf/3 -> NaN", -inf, 3, "div", "nan"},
	{"NaN/3 -> NaN", math.NaN(), 3, "div", "nan"},
	{"3/NaN -> NaN", 3, math.NaN(), "div", "nan"},
	{"Inf/Inf -> NaN", inf, inf, "div", "nan"},
	{"0/0 -> NaN", 0, 0, "div", "nan"},

	// Reciprocal follows division's divisor rules.
	{"recip(0) -> NaN", 0, math.NaN(), "recip", "nan"},
	{"recip(-0) -> NaN", math.Copysign(0, -1), math.NaN(), "recip", "nan"},
	{"recip(Inf) -> NaN", inf, math.NaN(), "recip", "nan"},
	{"recip(NaN) -> NaN", math.NaN(), math.NaN(), "recip", "nan"},

	// Square root: negative and non-finite signal; ±0 stays defined.
	{"sqrt(-4) -> NaN", -4, math.NaN(), "sqrt", "nan"},
	{"sqrt(0) -> 0", 0, math.NaN(), "sqrt", "zero"},
	{"sqrt(-0) -> 0", math.Copysign(0, -1), math.NaN(), "sqrt", "zero"},
	{"sqrt(Inf) -> NaN", inf, math.NaN(), "sqrt", "nan"},
	{"sqrt(NaN) -> NaN", math.NaN(), math.NaN(), "sqrt", "nan"},
	{"rsqrt(0) -> NaN", 0, math.NaN(), "rsqrt", "nan"},
	{"rsqrt(-1) -> NaN", -1, math.NaN(), "rsqrt", "nan"},
	{"rsqrt(Inf) -> NaN", inf, math.NaN(), "rsqrt", "nan"},

	// Add/Sub/Mul: ANY non-finite operand collapses (unlike IEEE, where
	// Inf+1 = Inf — renormalization computes Inf-Inf internally).
	{"Inf+1 -> NaN", inf, 1, "add", "nan"},
	{"1+(-Inf) -> NaN", 1, -inf, "add", "nan"},
	{"Inf-Inf -> NaN", inf, inf, "sub", "nan"},
	{"NaN+1 -> NaN", math.NaN(), 1, "add", "nan"},
	{"Inf*0 -> NaN", inf, 0, "mul", "nan"},
	{"Inf*3 -> NaN", inf, 3, "mul", "nan"},
	{"NaN*3 -> NaN", math.NaN(), 3, "mul", "nan"},

	// Signed-zero sums collapse to exact zero.
	{"-0+0 -> 0", math.Copysign(0, -1), 0, "add", "zero"},
	{"-0 - 0 -> 0", math.Copysign(0, -1), 0, "sub", "zero"},
}

func runSpecialMatrix[E specialOps[E]](t *testing.T, width string, mk func(float64) E) {
	t.Helper()
	for _, c := range specialMatrix {
		x := mk(c.x)
		var got E
		switch c.op {
		case "add":
			got = x.Add(mk(c.y))
		case "sub":
			got = x.Sub(mk(c.y))
		case "mul":
			got = x.Mul(mk(c.y))
		case "div":
			got = x.Div(mk(c.y))
		case "recip":
			got = x.Recip()
		case "sqrt":
			got = x.Sqrt()
		case "rsqrt":
			got = x.Rsqrt()
		default:
			t.Fatalf("unknown op %q", c.op)
		}
		switch c.want {
		case "nan":
			if !got.IsNaN() {
				t.Errorf("%s %s: got %v, want NaN collapse", width, c.name, got)
			}
		case "zero":
			if got.IsNaN() || !got.IsZero() {
				t.Errorf("%s %s: got %v, want exact zero", width, c.name, got)
			}
		}
	}
}

func TestSpecialValueMatrix(t *testing.T) {
	runSpecialMatrix(t, "F2", func(v float64) mf.Float64x2 { return mf.New2(v) })
	runSpecialMatrix(t, "F3", func(v float64) mf.Float64x3 { return mf.New3(v) })
	runSpecialMatrix(t, "F4", func(v float64) mf.Float64x4 { return mf.New4(v) })
}

// TestSpecialCollapseIsTotal checks the collapse covers every term, not
// just the leading one: downstream code that inspects tail terms must
// not see stale finite values after a signaling operation.
func TestSpecialCollapseIsTotal(t *testing.T) {
	q := mf.New4(1.0).Div(mf.New4(0.0))
	for i, term := range q {
		if !math.IsNaN(term) {
			t.Errorf("1/0 term %d = %g, want NaN", i, term)
		}
	}
	s := mf.New3(-1.0).Sqrt()
	for i, term := range s {
		if !math.IsNaN(term) {
			t.Errorf("sqrt(-1) term %d = %g, want NaN", i, term)
		}
	}
}

// TestNaNPoisonsDeepTerm checks that a NaN hidden in a TAIL term (not
// the lead) still poisons arithmetic: the renormalization chain touches
// every term.
func TestNaNPoisonsDeepTerm(t *testing.T) {
	x := mf.Float64x4{1, math.NaN(), 0, 0}
	if got := x.Add(mf.New4(1.0)); !got.IsNaN() {
		t.Errorf("(1, NaN, 0, 0) + 1 = %v, want NaN", got)
	}
	if got := x.Mul(mf.New4(2.0)); !got.IsNaN() {
		t.Errorf("(1, NaN, 0, 0) * 2 = %v, want NaN", got)
	}
}
