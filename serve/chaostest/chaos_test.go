package chaostest

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multifloats/internal/blas"
	"multifloats/internal/diffuzz"
	"multifloats/internal/netfault"
	"multifloats/internal/testutil"
	"multifloats/mf"
	"multifloats/serve/client"
	"multifloats/serve/server"
)

// chaosSeeds sets how many seeded campaigns TestChaosCampaigns runs.
// `make chaos` raises it to a full matrix; `make chaos-smoke` trims it.
var chaosSeeds = flag.Int("chaos.seeds", 6, "number of seeded chaos campaigns to run")

// profile is one fault mix. Campaign i runs profiles[i%len(profiles)]
// with seed 1000+i, so every profile appears across any span of seeds
// and a failing campaign names both its seed and its profile.
type profile struct {
	name   string
	server netfault.Config  // wraps the server's listener (both directions)
	dialer *netfault.Config // wraps the client's outbound conns, when set
}

var profiles = []profile{
	{name: "corruption", server: netfault.Config{ReadCorrupt: 3e-4, WriteCorrupt: 3e-4}},
	{name: "resets", server: netfault.Config{ResetRate: 0.01}},
	{name: "latency", server: netfault.Config{
		DelayRate: 0.08, MaxDelay: 2 * time.Millisecond,
		StallRate: 0.002, Stall: 30 * time.Millisecond}},
	{name: "fragmentation",
		server: netfault.Config{ReadChunk: 7, WriteChunk: 13},
		dialer: &netfault.Config{ReadChunk: 9, WriteChunk: 11}},
	{name: "kitchen-sink",
		server: netfault.Config{
			ReadCorrupt: 1e-4, WriteCorrupt: 1e-4,
			ReadChunk: 64, WriteChunk: 64,
			DelayRate: 0.02, MaxDelay: time.Millisecond,
			ResetRate: 0.003},
		dialer: &netfault.Config{ReadCorrupt: 1e-4, WriteCorrupt: 1e-4}},
}

// TestChaosCampaigns is the invariant suite: -chaos.seeds campaigns,
// each a deterministic (seed, profile) pair of concurrent mixed traffic
// through the fault injector.
func TestChaosCampaigns(t *testing.T) {
	// Warm the process-wide blas pool so its lazily-spawned workers are in
	// the goroutine baseline, then demand that everything the campaigns
	// start (servers, conn handlers, client pools) is gone at the end —
	// invariant 2.
	blas.Parallel(4, 2, func(lo, hi int) {})
	testutil.VerifyNoLeaks(t)
	for i := 0; i < *chaosSeeds; i++ {
		seed := int64(1000 + i)
		prof := profiles[i%len(profiles)]
		t.Run(fmt.Sprintf("seed=%d,profile=%s", seed, prof.name), func(t *testing.T) {
			runCampaign(t, seed, prof)
		})
	}
}

// campaignServer starts a server behind a fault-wrapped listener and
// returns it with its fault stats and the address to dial.
func campaignServer(t *testing.T, seed int64, prof profile) (*server.Server, *netfault.Stats, string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	scfg := prof.server
	scfg.Seed = seed
	fln := netfault.Wrap(ln, scfg)
	s := server.New(server.Config{
		BatchWindow: 100 * time.Microsecond,
		MaxBatch:    64,
		Workers:     1, // sequential kernel order, so the local oracle is bit-exact for BLAS too
		// Short enough that injected stalls trip them within the campaign,
		// long enough that honest slow paths (batch window + retry backoff)
		// never do.
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	done := make(chan error, 1)
	go func() { done <- s.ServeListener(fln) }()
	return s, fln.Stats(), ln.Addr().String(), done
}

func runCampaign(t *testing.T, seed int64, prof profile) {
	s, stats, addr, done := campaignServer(t, seed, prof)

	opts := []client.Option{
		client.WithMaxRetries(6),
		client.WithBackoff(time.Millisecond, 10*time.Millisecond),
		client.WithDialTimeout(2 * time.Second),
		client.WithIOTimeout(2 * time.Second),
	}
	var dialerStats *netfault.Stats
	if prof.dialer != nil {
		dcfg := *prof.dialer
		dcfg.Seed = seed + 1
		d := netfault.NewDialer(dcfg)
		dialerStats = d.Stats()
		opts = append(opts, client.WithDialer(d.Dial))
	}
	c, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const goroutines = 4
	const iters = 15
	var okCalls, failedCalls atomic.Int64
	mismatches := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := diffuzz.NewGen(seed*31 + int64(g))
			for it := 0; it < iters; it++ {
				if err := chaosRound(ctx, c, gen, it, &okCalls, &failedCalls); err != nil {
					select {
					case mismatches <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(mismatches)
	// Invariant 1: transport faults may fail calls loudly, never change a
	// delivered value.
	for err := range mismatches {
		t.Errorf("silently corrupted result delivered: %v", err)
	}

	// Invariant 3: drain completes while the fault schedule is still
	// attached to every surviving connection.
	c.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Errorf("Shutdown under faults: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("Serve: %v", err)
	}

	// Non-vacuity: a green campaign that injected nothing and completed
	// nothing proves nothing.
	injected := stats.CorruptedBytes.Load() + stats.Delays.Load() + stats.Stalls.Load() +
		stats.Resets.Load() + stats.ShortOps.Load()
	if dialerStats != nil {
		injected += dialerStats.CorruptedBytes.Load() + dialerStats.Delays.Load() +
			dialerStats.Stalls.Load() + dialerStats.Resets.Load() + dialerStats.ShortOps.Load()
	}
	if injected == 0 {
		t.Errorf("campaign injected zero faults (listener: %v)", stats)
	}
	if okCalls.Load() == 0 {
		t.Errorf("campaign completed zero calls (%d failed) — invariants vacuous", failedCalls.Load())
	}
	t.Logf("seed=%d profile=%s: %d ok, %d failed calls; listener faults: %v; server: checksum=%d proto=%d idle=%d",
		seed, prof.name, okCalls.Load(), failedCalls.Load(), stats,
		s.Stats().ChecksumErrors.Load(), s.Stats().ProtocolErrors.Load(), s.Stats().IdleTimeouts.Load())
}

// chaosRound issues one iteration of mixed traffic. A call error is
// tolerated (the fault schedule can exhaust the retry budget) and
// counted; a successful call whose value is not bit-identical to the
// local computation is the invariant violation this suite exists to
// catch, and is returned.
func chaosRound(ctx context.Context, c *client.Client, gen *diffuzz.Gen, it int,
	okCalls, failedCalls *atomic.Int64) error {
	check := func(name string, err error, exact bool) error {
		if err != nil {
			failedCalls.Add(1)
			return nil
		}
		okCalls.Add(1)
		if !exact {
			return fmt.Errorf("%s: delivered result differs from local computation", name)
		}
		return nil
	}

	var x2, y2 mf.Float64x2
	copy(x2[:], gen.Expansion(2, 200))
	copy(y2[:], gen.Expansion(2, 200))
	got2, err := c.Add2(ctx, x2, y2)
	if e := check("Add2", err, err != nil || eq2(got2, x2.Add(y2))); e != nil {
		return e
	}
	got2, err = c.Mul2(ctx, x2, y2)
	if e := check("Mul2", err, err != nil || eq2(got2, x2.Mul(y2))); e != nil {
		return e
	}

	var x3, y3 mf.Float64x3
	copy(x3[:], gen.Expansion(3, 120))
	copy(y3[:], gen.NonZero(3, 120))
	got3, err := c.Div3(ctx, x3, y3)
	if e := check("Div3", err, err != nil || eq3(got3, x3.Div(y3))); e != nil {
		return e
	}

	var x4 mf.Float64x4
	copy(x4[:], gen.Positive(4, 100))
	got4, err := c.Sqrt4(ctx, x4)
	if e := check("Sqrt4", err, err != nil || eq4(got4, x4.Sqrt())); e != nil {
		return e
	}

	// Rotate one BLAS shape per iteration; expected values from the
	// sequential (workers=1) kernels, matching the campaign server.
	switch it % 3 {
	case 0:
		n := 8 + it%9
		vx := make([]mf.Float64x2, n)
		vy := make([]mf.Float64x2, n)
		for i := range vx {
			copy(vx[i][:], gen.BlasElement(2))
			copy(vy[i][:], gen.BlasElement(2))
		}
		got, err := c.Dot2(ctx, vx, vy)
		if e := check("Dot2", err, err != nil || eq2(got, blas.DotF2Parallel(vx, vy, 1))); e != nil {
			return e
		}
	case 1:
		rows, cols := 4+it%4, 5+it%3
		a := make([]mf.Float64x3, rows*cols)
		vx := make([]mf.Float64x3, cols)
		for i := range a {
			copy(a[i][:], gen.BlasElement(3))
		}
		for i := range vx {
			copy(vx[i][:], gen.BlasElement(3))
		}
		got, err := c.Gemv3(ctx, a, rows, cols, vx)
		if err != nil {
			failedCalls.Add(1)
			return nil
		}
		okCalls.Add(1)
		want := make([]mf.Float64x3, rows)
		blas.GemvTiledF3Parallel(a, rows, cols, vx, want, 1)
		for i := range want {
			if !eq3(got[i], want[i]) {
				return fmt.Errorf("Gemv3: delivered element %d differs from local computation", i)
			}
		}
	default:
		dim := 3 + it%3
		a := make([]mf.Float64x4, dim*dim)
		b := make([]mf.Float64x4, dim*dim)
		for i := range a {
			copy(a[i][:], gen.BlasElement(4))
			copy(b[i][:], gen.BlasElement(4))
		}
		got, err := c.Gemm4(ctx, a, b, dim)
		if err != nil {
			failedCalls.Add(1)
			return nil
		}
		okCalls.Add(1)
		want := make([]mf.Float64x4, dim*dim)
		blas.GemmBlockedF4Parallel(a, b, want, dim, 1)
		for i := range want {
			if !eq4(got[i], want[i]) {
				return fmt.Errorf("Gemm4: delivered element %d differs from local computation", i)
			}
		}
	}
	return nil
}

// TestDrainUnderActiveFaults is invariant 3 in isolation: Shutdown is
// called while traffic goroutines are mid-call and the fault schedule is
// still corrupting, fragmenting, and resetting — the drain must still
// complete inside its budget.
func TestDrainUnderActiveFaults(t *testing.T) {
	blas.Parallel(4, 2, func(lo, hi int) {})
	testutil.VerifyNoLeaks(t)
	s, stats, addr, done := campaignServer(t, 4242, profile{
		name: "drain-under-fire",
		server: netfault.Config{
			ReadCorrupt: 2e-4, WriteCorrupt: 2e-4,
			ReadChunk: 32, WriteChunk: 32,
			DelayRate: 0.05, MaxDelay: time.Millisecond,
			ResetRate: 0.005},
	})
	c, err := client.Dial(addr,
		client.WithMaxRetries(3),
		client.WithBackoff(time.Millisecond, 5*time.Millisecond),
		client.WithDialTimeout(time.Second),
		client.WithIOTimeout(time.Second))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var okCalls atomic.Int64
	mismatch := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := diffuzz.NewGen(int64(7000 + g))
			for ctx.Err() == nil {
				var x2, y2 mf.Float64x2
				copy(x2[:], gen.Expansion(2, 100))
				copy(y2[:], gen.Expansion(2, 100))
				got, err := c.Mul2(ctx, x2, y2)
				if err != nil {
					continue // loud failures are fine, before and after the drain
				}
				okCalls.Add(1)
				if !eq2(got, x2.Mul(y2)) {
					select {
					case mismatch <- fmt.Errorf("Mul2 corrupted during drain"):
					default:
					}
					return
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond) // let traffic and faults build up
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	start := time.Now()
	if err := s.Shutdown(sctx); err != nil {
		t.Errorf("Shutdown under active faults: %v", err)
	}
	drainTime := time.Since(start)
	if err := <-done; err != nil {
		t.Errorf("Serve: %v", err)
	}
	cancel()
	wg.Wait()
	c.Close()
	close(mismatch)
	for err := range mismatch {
		t.Error(err)
	}
	if okCalls.Load() == 0 {
		t.Error("no calls completed before the drain — test vacuous")
	}
	injected := stats.CorruptedBytes.Load() + stats.Delays.Load() + stats.Resets.Load() + stats.ShortOps.Load()
	if injected == 0 {
		t.Errorf("no faults injected (%v) — test vacuous", stats)
	}
	t.Logf("drained in %v with %d ok calls; faults: %v", drainTime, okCalls.Load(), stats)
}

// contextWithTimeout returns a 10s-bounded context whose cancel runs at
// test cleanup.
func contextWithTimeout(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// Bit-exact comparisons (NaN-safe: compares IEEE-754 bit patterns, not
// float equality).
func eq2(a, b mf.Float64x2) bool { return eqBits(a[:], b[:]) }
func eq3(a, b mf.Float64x3) bool { return eqBits(a[:], b[:]) }
func eq4(a, b mf.Float64x4) bool { return eqBits(a[:], b[:]) }

func eqBits(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
