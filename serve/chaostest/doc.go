// Package chaostest is the chaos suite for the mfserve stack: seeded
// fault-injection campaigns (internal/netfault) driving concurrent mixed
// scalar and BLAS traffic through a real server and the real pooled
// client, asserting three invariants under every fault profile:
//
//  1. No silently corrupted response is ever delivered. Every result the
//     client hands back must be bit-identical to the in-process mf/blas
//     computation on the same operands — transport faults may slow a call
//     down or fail it loudly, never change its value.
//  2. No server panic and no goroutine leak: the goroutine population
//     returns to its pre-campaign baseline after client close and server
//     shutdown.
//  3. Graceful drain completes while faults are still firing.
//
// The teeth test proves the suite is not vacuously green: a CRC-ignoring
// decoder (protocol v1 semantics) applied to the same corrupted byte
// stream delivers silently wrong results that the v2 CRC32C check turns
// into loud ErrChecksum failures.
//
// Campaigns are deterministic per seed. Reproduce a failure with
//
//	go test ./serve/chaostest -run 'Campaigns/seed=17' -chaos.seeds 32
//
// (a campaign's fault schedule depends only on its seed and the
// per-connection operation sequence; see internal/netfault).
package chaostest
