package chaostest

// Proxy chaos campaigns: an mfproxy in front of two restartable
// backends whose links run through the netfault injector, with backends
// killed and restarted mid-campaign while mixed scalar/BLAS traffic and
// multi-chunk reduction streams are in flight.
//
// Invariants:
//  1. Every response the cluster completes is bit-identical to the
//     local computation — including reductions whose shard streams were
//     resharded across a backend kill. Faults and failover may fail a
//     call loudly; they may never change a delivered value.
//  2. The proxy drains cleanly with the fault schedule still attached.
//  3. Nothing leaks: servers, proxy conns, client pools are gone at exit.
//
// Non-vacuity: a campaign must complete calls AND reductions, restart
// backends, and observe the proxy actually failing over (failovers,
// reshards, or ejections) — a green run that exercised nothing proves
// nothing.

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multifloats/internal/blas"
	"multifloats/internal/diffuzz"
	"multifloats/internal/exact"
	"multifloats/internal/netfault"
	"multifloats/internal/testutil"
	"multifloats/mf"
	"multifloats/serve/client"
	"multifloats/serve/proxy"
	"multifloats/serve/server"
)

// proxyProfiles are the upstream-link fault mixes. Stall-free: a
// stalled upstream read parks a shard stream for the stall duration,
// which is chaos the kill/restart schedule already covers more
// violently.
var proxyProfiles = []profile{
	{name: "corruption", server: netfault.Config{ReadCorrupt: 2e-4, WriteCorrupt: 2e-4}},
	{name: "resets", server: netfault.Config{ResetRate: 0.008}},
	{name: "fragmentation", server: netfault.Config{ReadChunk: 7, WriteChunk: 13}},
	{name: "kitchen-sink", server: netfault.Config{
		ReadCorrupt: 1e-4, WriteCorrupt: 1e-4,
		ReadChunk: 64, WriteChunk: 64,
		DelayRate: 0.02, MaxDelay: time.Millisecond,
		ResetRate: 0.002}},
}

// restartableBackend is an mfserved that can be killed and brought back
// on the same address, each generation behind a fresh fault-wrapped
// listener.
type restartableBackend struct {
	t     *testing.T
	addr  string
	fault netfault.Config

	mu       sync.Mutex
	s        *server.Server
	done     chan error
	injected int64 // fault counters accumulated across dead generations
	gen      int64 // seeds each generation's fault schedule differently
	stats    *netfault.Stats
}

func startRestartableBackend(t *testing.T, seed int64, fault netfault.Config) *restartableBackend {
	b := &restartableBackend{t: t, fault: fault, gen: seed}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	b.addr = ln.Addr().String()
	b.startOn(ln)
	t.Cleanup(b.kill)
	return b
}

func (b *restartableBackend) startOn(ln net.Listener) {
	b.fault.Seed = b.gen
	b.gen++
	fln := netfault.Wrap(ln, b.fault)
	s := server.New(server.Config{
		BatchWindow:  100 * time.Microsecond,
		MaxBatch:     64,
		Workers:      1, // sequential kernel order: the local oracle is bit-exact for BLAS
		IdleTimeout:  2 * time.Second,
		WriteTimeout: 2 * time.Second,
	})
	done := make(chan error, 1)
	go func() { done <- s.ServeListener(fln) }()
	b.mu.Lock()
	b.s, b.done, b.stats = s, done, fln.Stats()
	b.mu.Unlock()
}

// kill shuts the current generation down (idempotent).
func (b *restartableBackend) kill() {
	b.mu.Lock()
	s, done, st := b.s, b.done, b.stats
	b.s, b.done, b.stats = nil, nil, nil
	if st != nil {
		b.injected += st.CorruptedBytes.Load() + st.Delays.Load() + st.Stalls.Load() +
			st.Resets.Load() + st.ShortOps.Load()
	}
	b.mu.Unlock()
	if s == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		b.t.Errorf("backend shutdown: %v", err)
	}
	if err := <-done; err != nil {
		b.t.Errorf("backend serve: %v", err)
	}
}

// restart brings a killed backend back on its original address,
// retrying briefly in case the kernel is slow releasing the port.
func (b *restartableBackend) restart() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", b.addr)
		if err == nil {
			b.startOn(ln)
			return
		}
		if time.Now().After(deadline) {
			b.t.Errorf("rebind %s: %v", b.addr, err)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (b *restartableBackend) faultsInjected() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.injected
	if b.stats != nil {
		n += b.stats.CorruptedBytes.Load() + b.stats.Delays.Load() + b.stats.Stalls.Load() +
			b.stats.Resets.Load() + b.stats.ShortOps.Load()
	}
	return n
}

func TestProxyChaosCampaigns(t *testing.T) {
	blas.Parallel(4, 2, func(lo, hi int) {})
	testutil.VerifyNoLeaks(t)
	for i := 0; i < *chaosSeeds; i++ {
		seed := int64(5000 + i)
		prof := proxyProfiles[i%len(proxyProfiles)]
		t.Run(fmt.Sprintf("seed=%d,profile=%s", seed, prof.name), func(t *testing.T) {
			runProxyCampaign(t, seed, prof)
		})
	}
}

func runProxyCampaign(t *testing.T, seed int64, prof profile) {
	b0 := startRestartableBackend(t, seed*2, prof.server)
	b1 := startRestartableBackend(t, seed*2+1, prof.server)
	backends := []*restartableBackend{b0, b1}

	p, err := proxy.New(proxy.Config{
		Addr:          "127.0.0.1:0",
		Backends:      []string{b0.addr, b1.addr},
		ReduceShards:  2,
		FailThreshold: 2,
		ProbeAfter:    100 * time.Millisecond,
		Seed:          seed,
		IdleTimeout:   2 * time.Second,
		WriteTimeout:  2 * time.Second,
		ClientOptions: []client.Option{
			client.WithMaxRetries(1),
			client.WithBackoff(time.Millisecond, 5*time.Millisecond),
			client.WithDialTimeout(time.Second),
			client.WithIOTimeout(2 * time.Second),
		},
	})
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	if err := p.Listen(); err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	pdone := make(chan error, 1)
	go func() { pdone <- p.Serve() }()

	c, err := client.Dial(p.Addr().String(),
		client.WithMaxRetries(6),
		client.WithBackoff(time.Millisecond, 10*time.Millisecond),
		client.WithDialTimeout(2*time.Second),
		client.WithIOTimeout(2*time.Second),
		client.WithReduceChunk(8), // multi-chunk streams even for small vectors
	)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}

	// Kill/restart schedule: alternate backends, three cycles, while
	// traffic runs. Never both dead at once — the cluster must stay
	// answerable, just degraded.
	var restarts atomic.Int64
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for cycle := 0; cycle < 3; cycle++ {
			b := backends[cycle%2]
			time.Sleep(150 * time.Millisecond)
			b.kill()
			time.Sleep(150 * time.Millisecond)
			b.restart()
			restarts.Add(1)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	const goroutines = 4
	var okCalls, failedCalls, okReductions atomic.Int64
	mismatches := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := diffuzz.NewGen(seed*37 + int64(g))
			// Run until the kill schedule is spent, with a floor so every
			// campaign sees traffic both before and after restarts.
			for it := 0; ; it++ {
				if err := proxyChaosRound(ctx, c, gen, it, &okCalls, &failedCalls, &okReductions); err != nil {
					select {
					case mismatches <- err:
					default:
					}
					return
				}
				if it >= 10 {
					select {
					case <-killDone:
						return
					default:
					}
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	<-killDone
	close(mismatches)
	// Invariant 1: no completed response may differ from local compute.
	for err := range mismatches {
		t.Errorf("cluster delivered a bit-inexact response: %v", err)
	}

	// Invariant 2: the proxy drains with faults still attached.
	c.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := p.Shutdown(sctx); err != nil {
		t.Errorf("proxy Shutdown under chaos: %v", err)
	}
	if err := <-pdone; err != nil {
		t.Errorf("proxy Serve: %v", err)
	}

	// Non-vacuity.
	snap := p.Stats().Snapshot()
	if okCalls.Load() == 0 {
		t.Errorf("campaign completed zero calls (%d failed) — invariants vacuous", failedCalls.Load())
	}
	if okReductions.Load() == 0 {
		t.Errorf("campaign completed zero reduction streams — reshard invariant vacuous")
	}
	if restarts.Load() == 0 {
		t.Error("no backend restarts happened")
	}
	if snap.Failovers+snap.Reshards+snap.Ejections == 0 {
		t.Error("proxy never failed over, resharded, or ejected — kills were not observed")
	}
	injected := b0.faultsInjected() + b1.faultsInjected()
	if injected == 0 {
		t.Error("campaign injected zero upstream faults")
	}
	t.Logf("seed=%d profile=%s: %d ok (%d reductions), %d failed, %d restarts; proxy: failovers=%d reshards=%d ejections=%d reinstates=%d cacheHits=%d; upstream faults=%d",
		seed, prof.name, okCalls.Load(), okReductions.Load(), failedCalls.Load(), restarts.Load(),
		snap.Failovers, snap.Reshards, snap.Ejections, snap.Reinstates, snap.CacheHits, injected)
}

// proxyChaosRound issues one iteration of mixed cluster traffic. Failed
// calls are tolerated and counted; an OK response whose value differs
// from the local computation is returned as the invariant violation.
func proxyChaosRound(ctx context.Context, c *client.Client, gen *diffuzz.Gen, it int,
	okCalls, failedCalls, okReductions *atomic.Int64) error {
	check := func(name string, err error, exact bool) error {
		if err != nil {
			failedCalls.Add(1)
			return nil
		}
		okCalls.Add(1)
		if !exact {
			return fmt.Errorf("%s: delivered result differs from local computation", name)
		}
		return nil
	}

	var x2, y2 mf.Float64x2
	copy(x2[:], gen.Expansion(2, 200))
	copy(y2[:], gen.Expansion(2, 200))
	got2, err := c.Add2(ctx, x2, y2)
	if e := check("Add2", err, err != nil || eq2(got2, x2.Add(y2))); e != nil {
		return e
	}
	got2, err = c.Mul2(ctx, x2, y2)
	if e := check("Mul2", err, err != nil || eq2(got2, x2.Mul(y2))); e != nil {
		return e
	}

	var x3, y3 mf.Float64x3
	copy(x3[:], gen.Expansion(3, 120))
	copy(y3[:], gen.NonZero(3, 120))
	got3, err := c.Div3(ctx, x3, y3)
	if e := check("Div3", err, err != nil || eq3(got3, x3.Div(y3))); e != nil {
		return e
	}

	// BLAS through the cluster, against the sequential local kernel.
	n := 6 + it%7
	vx := make([]mf.Float64x2, n)
	vy := make([]mf.Float64x2, n)
	for i := range vx {
		copy(vx[i][:], gen.BlasElement(2))
		copy(vy[i][:], gen.BlasElement(2))
	}
	gotDot, err := c.Dot2(ctx, vx, vy)
	if e := check("Dot2", err, err != nil || eq2(gotDot, blas.DotF2Parallel(vx, vy, 1))); e != nil {
		return e
	}

	// Multi-chunk reduction stream (chunk size 8): sharded across
	// backends by the proxy, resharded when a kill lands mid-stream.
	m := 40 + it%40
	xs := make([]float64, 0, m)
	for _, e := range gen.ReduceVector(1, m) {
		xs = append(xs, e...)
	}
	gotSum, err := c.SumExact(ctx, xs)
	if err != nil {
		failedCalls.Add(1)
		return nil
	}
	okCalls.Add(1)
	okReductions.Add(1)
	if math.Float64bits(gotSum) != math.Float64bits(exact.Sum(xs)) {
		return fmt.Errorf("SumExact: resharded stream delivered %x, local %x",
			math.Float64bits(gotSum), math.Float64bits(exact.Sum(xs)))
	}
	return nil
}
