package chaostest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net"
	"testing"

	"multifloats/internal/blas"
	"multifloats/internal/diffuzz"
	"multifloats/internal/netfault"
	"multifloats/internal/testutil"
	"multifloats/mf"
	"multifloats/serve/server"
	"multifloats/serve/wire"
)

// TestChecksumHasTeeth proves the CRC32C trailer is load-bearing, not
// ceremony. It replays the exact same corrupted byte stream through two
// decoders:
//
//   - a local CRC-ignoring decoder with protocol-v1 semantics (trust the
//     status byte, lift the floats out of the payload), standing in for
//     "the suite with checksum verification disabled";
//   - the real v2 wire.ReadResponse.
//
// The run must observe at least one frame where the naive decoder
// delivers a plausible, silently WRONG result — the failure mode the
// chaos invariants exist to catch — while the real decoder never
// produces anything but the exact server-computed bits or a loud error.
// If corruption stopped producing silent wrongness under the naive
// decoder, the chaos suite would have lost its teeth and this test
// fails, vacuously green campaigns notwithstanding.
func TestChecksumHasTeeth(t *testing.T) {
	blas.Parallel(4, 2, func(lo, hi int) {})
	testutil.VerifyNoLeaks(t)

	// Clean server; corruption is injected on the test's own read path so
	// every response frame reaches us with schedule-chosen bit flips.
	s := server.New(server.Config{Addr: "127.0.0.1:0", Workers: 1})
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		if err := s.Shutdown(contextWithTimeout(t)); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	fc := netfault.WrapConn(nc, netfault.Config{Seed: 0x7ee7, ReadCorrupt: 0.01}, 0, nil)
	br := bufio.NewReader(fc) // response bytes arrive corrupted
	bw := bufio.NewWriter(nc) // requests go out clean, via the raw conn

	const (
		iters = 80
		count = 8
		width = 2
	)
	respLen := wire.HeaderSize + 8 + 8*count*width + wire.TrailerSize
	gen := diffuzz.NewGen(0x7ee7)

	var corrupted, silentWrong, strictCaught int
	for i := 0; i < iters; i++ {
		// One mul request with a locally-computed expected slab.
		xs := make([]mf.Float64x2, count)
		ys := make([]mf.Float64x2, count)
		want := make([]mf.Float64x2, count)
		for j := range xs {
			copy(xs[j][:], gen.BlasElement(width))
			copy(ys[j][:], gen.BlasElement(width))
			want[j] = xs[j].Mul(ys[j])
		}
		req := &wire.Request{ID: uint64(i + 1), Op: wire.OpMul, Width: width, Count: count,
			X: wire.Pack2(xs), Y: wire.Pack2(ys)}
		if err := wire.WriteRequest(bw, req); err != nil {
			t.Fatalf("WriteRequest: %v", err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}

		// The server answers StatusOK with a fixed-size frame; corruption
		// flips bits in place but never changes lengths, so reading exactly
		// respLen bytes keeps the stream frame-aligned.
		frame := make([]byte, respLen)
		if _, err := io.ReadFull(br, frame); err != nil {
			t.Fatalf("read response %d: %v", i, err)
		}

		// Ground truth: the canonical sealed frame for the expected answer.
		var canonical bytes.Buffer
		if err := wire.WriteResponse(&canonical, &wire.Response{ID: req.ID, Status: wire.StatusOK, Data: wire.Pack2(want)}); err != nil {
			t.Fatal(err)
		}
		pristine := bytes.Equal(frame, canonical.Bytes())

		// Decoder 1: CRC-ignoring (v1 semantics). On corrupted frames this
		// is where silent wrongness comes from.
		if status, data := naiveDecode(frame, count*width); !pristine && status == byte(wire.StatusOK) {
			if !slabBitsEqual(data, wire.Pack2(want)) {
				silentWrong++
			}
		}

		// Decoder 2: the real one. A corrupted frame must fail loudly; a
		// pristine frame must decode to the exact expected bits.
		resp, err := wire.ReadResponse(bytes.NewReader(frame))
		switch {
		case pristine:
			if err != nil {
				t.Fatalf("frame %d: pristine frame rejected: %v", i, err)
			}
			if resp.ID != req.ID || resp.Status != wire.StatusOK || !slabBitsEqual(resp.Data, wire.Pack2(want)) {
				t.Fatalf("frame %d: pristine frame decoded to wrong content", i)
			}
		default:
			corrupted++
			if err == nil {
				t.Fatalf("frame %d: corrupted frame accepted by the v2 decoder (id=%d status=%v)",
					i, resp.ID, resp.Status)
			}
			strictCaught++
		}
	}

	if corrupted == 0 {
		t.Fatal("fault schedule corrupted zero frames — test vacuous")
	}
	if silentWrong == 0 {
		t.Fatalf("no silently wrong result from the CRC-ignoring decoder across %d corrupted frames — the chaos suite has no teeth", corrupted)
	}
	t.Logf("%d/%d frames corrupted; CRC-less decoder delivered %d silently wrong results; v2 decoder caught all %d",
		corrupted, iters, silentWrong, strictCaught)
}

// naiveDecode is the CRC-ignoring decoder: protocol-v1 semantics applied
// to a v2 frame of known geometry (trust the status byte, reinterpret
// the payload floats, never look at the trailer).
func naiveDecode(frame []byte, elems int) (status byte, data []float64) {
	status = frame[wire.HeaderSize]
	data = make([]float64, elems)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(frame[wire.HeaderSize+8+8*i:]))
	}
	return status, data
}

func slabBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	return eqBits(a, b)
}
