// Package client is the connection-pooled client for the mfserve compute
// service. It mirrors the mf package's API surface over the network:
// typed scalar and BLAS calls on Float64x2/x3/x4 values, with request
// deadlines taken from the context, transparent retries with jittered
// exponential backoff on transient failures (dial/IO errors, server
// overload — honoring the server's retry-after hint, and response
// integrity failures — see ErrIntegrity), and bit-exact results (the
// wire encoding is the raw component bit pattern, and every frame is
// CRC32C-verified, so a result that reaches the caller is exactly the
// one the server computed).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"multifloats/serve/wire"
)

// Typed failures. Transient conditions are retried internally up to the
// configured attempt budget; these surface once it is exhausted (or
// immediately for the non-retryable ones).
var (
	// ErrDeadlineExceeded: the server reported the request's deadline
	// passed before completion. Not retried (the deadline is gone).
	ErrDeadlineExceeded = errors.New("mfserve: deadline exceeded")
	// ErrOverloaded: the server shed the request and the retry budget ran
	// out.
	ErrOverloaded = errors.New("mfserve: server overloaded")
	// ErrBadRequest: the server rejected the request as invalid.
	ErrBadRequest = errors.New("mfserve: bad request")
	// ErrServer: the server reported an internal failure.
	ErrServer = errors.New("mfserve: internal server error")
	// ErrClosed: the client has been closed.
	ErrClosed = errors.New("mfserve: client closed")
	// ErrIntegrity: a response failed an integrity check — CRC32C trailer
	// mismatch, unparseable framing, or a request-ID desync. The bytes on
	// that connection cannot be trusted, so the connection is discarded
	// and the attempt retried on a fresh one (the request itself was fine;
	// only its transport failed). Distinct from the application-level
	// errors above: the server never vouched for a corrupted result.
	ErrIntegrity = errors.New("mfserve: response integrity failure")
)

// Option configures a Client.
type Option func(*Client)

// WithPoolSize caps idle pooled connections (default 8).
func WithPoolSize(n int) Option { return func(c *Client) { c.poolSize = n } }

// WithMaxRetries sets the transient-failure retry budget per call
// (default 3 retries, i.e. up to 4 attempts).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the base and cap of the jittered exponential backoff
// between retries (defaults 2ms base, 250ms cap).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoffBase, c.backoffMax = base, max }
}

// WithDialTimeout bounds each dial attempt (default 5s).
func WithDialTimeout(d time.Duration) Option { return func(c *Client) { c.dialTimeout = d } }

// WithIOTimeout bounds each request/response exchange when the context
// carries no deadline (default 30s).
func WithIOTimeout(d time.Duration) Option { return func(c *Client) { c.ioTimeout = d } }

// WithReduceChunk sets how many expansion elements each streamed chunk
// of a reduction call carries (default 65536). The result is
// bit-identical for every chunk size — the server's superaccumulator is
// exact and order-independent — so this tunes only frame sizes and
// pipelining, never values.
func WithReduceChunk(n int) Option { return func(c *Client) { c.reduceChunk = n } }

// WithLazyDial skips Dial's eager reachability probe: the client is
// created immediately and connections are established on first use.
// This is what a proxy wants for its backends — a replica that is down
// at proxy start must not prevent the proxy from starting; it simply
// fails health checks until it comes back.
func WithLazyDial() Option { return func(c *Client) { c.lazyDial = true } }

// WithDialer overrides how connections are established — the hook for
// fault-injection harnesses (internal/netfault), proxies, or custom
// transports. The dialer must honor the timeout it is given.
func WithDialer(dial func(addr string, timeout time.Duration) (net.Conn, error)) Option {
	return func(c *Client) { c.dialFn = dial }
}

// Client is a connection-pooled mfserve client. Safe for concurrent use;
// each in-flight call holds one pooled connection.
type Client struct {
	addr        string
	poolSize    int
	maxRetries  int
	backoffBase time.Duration
	backoffMax  time.Duration
	dialTimeout time.Duration
	ioTimeout   time.Duration
	reduceChunk int
	lazyDial    bool
	dialFn      func(addr string, timeout time.Duration) (net.Conn, error)

	conns  chan *poolConn
	nextID atomic.Uint64
	closed atomic.Bool

	rngMu sync.Mutex
	rng   *rand.Rand
}

type poolConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial creates a client for the server at addr and verifies reachability
// by establishing one pooled connection.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:        addr,
		poolSize:    8,
		maxRetries:  3,
		backoffBase: 2 * time.Millisecond,
		backoffMax:  250 * time.Millisecond,
		dialTimeout: 5 * time.Second,
		ioTimeout:   30 * time.Second,
		reduceChunk: 1 << 16,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	if c.poolSize < 1 {
		c.poolSize = 1
	}
	if c.reduceChunk < 1 {
		c.reduceChunk = 1
	}
	c.conns = make(chan *poolConn, c.poolSize)
	if !c.lazyDial {
		pc, err := c.dial()
		if err != nil {
			return nil, fmt.Errorf("mfserve: dial %s: %w", addr, err)
		}
		c.put(pc)
	}
	return c, nil
}

// Close releases the pooled connections. In-flight calls fail. The pool
// channel is never closed (a concurrent put could panic on it); Close
// drains it non-blockingly and put discards stragglers.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	c.drainPool()
	return nil
}

// drainPool closes every connection currently sitting idle in the pool.
func (c *Client) drainPool() {
	for {
		select {
		case pc := <-c.conns:
			pc.nc.Close()
		default:
			return
		}
	}
}

func (c *Client) dial() (*poolConn, error) {
	var nc net.Conn
	var err error
	if c.dialFn != nil {
		nc, err = c.dialFn(c.addr, c.dialTimeout)
	} else {
		nc, err = net.DialTimeout("tcp", c.addr, c.dialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &poolConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 1<<16),
		bw: bufio.NewWriterSize(nc, 1<<16),
	}, nil
}

func (c *Client) get() (*poolConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	select {
	case pc := <-c.conns:
		return pc, nil
	default:
		return c.dial()
	}
}

func (c *Client) put(pc *poolConn) {
	if c.closed.Load() {
		pc.nc.Close()
		return
	}
	select {
	case c.conns <- pc:
		// Close may have flipped the flag and finished its drain between
		// our check and the send; sweep again so the conn cannot leak.
		if c.closed.Load() {
			c.drainPool()
		}
	default:
		pc.nc.Close()
	}
}

// backoff returns the jittered delay before attempt n (1-based), at
// least floor (the server's retry-after hint when present).
func (c *Client) backoff(attempt int, floor time.Duration) time.Duration {
	d := c.backoffBase << uint(attempt-1)
	if d > c.backoffMax {
		d = c.backoffMax
	}
	c.rngMu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	if jittered < floor {
		jittered = floor
	}
	return jittered
}

// do performs one request with retries, returning the OK result slab.
func (c *Client) do(ctx context.Context, req *wire.Request) ([]float64, error) {
	return c.withRetries(ctx, func() ([]float64, error) { return c.try(ctx, req) })
}

// Do sends one already-shaped request and returns the OK result slab,
// with the same pooled-connection, retry, and typed-error behavior as
// the typed calls. This is the forwarding primitive for proxies and
// other wire-aware callers: req's Op/Width/Count/M/Hops and operand
// slabs are sent as given, while ID is assigned fresh per attempt and
// Deadline is taken from ctx (any caller-set values are overwritten).
// Failed attempts may leave req mutated; callers must not reuse the
// struct concurrently.
func (c *Client) Do(ctx context.Context, req *wire.Request) ([]float64, error) {
	return c.do(ctx, req)
}

// IsRetryable reports whether err — from any call on this package's
// clients — is a transient failure: one the client already retried up
// to its budget, and one a caller holding other replicas (a proxy, a
// multi-target loader) may safely fail over on, because the request
// was never definitively accepted-and-answered. Dial and transport
// errors, server overload, and response-integrity failures
// (ErrIntegrity) are retryable; ErrDeadlineExceeded, ErrBadRequest,
// ErrServer, ErrClosed, and context cancellation are terminal.
func IsRetryable(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// withRetries runs one attempt of a call until it succeeds, fails
// permanently, or the transient-retry budget runs out — the shared
// engine behind single-request calls (do) and streaming reductions,
// whose unit of retry is the whole stream.
func (c *Client) withRetries(ctx context.Context, attemptFn func() ([]float64, error)) ([]float64, error) {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if attempt > c.maxRetries {
				return nil, fmt.Errorf("mfserve: %d attempts failed: %w", attempt, lastErr)
			}
			t := time.NewTimer(c.backoff(attempt, retryAfter))
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
			retryAfter = 0
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, err := attemptFn()
		if err == nil {
			return data, nil
		}
		lastErr = err
		var to *transientError
		if !errors.As(err, &to) {
			return nil, err
		}
		retryAfter = to.retryAfter
	}
}

// transientError wraps retryable failures.
type transientError struct {
	err        error
	retryAfter time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// try performs a single attempt on one pooled connection.
func (c *Client) try(ctx context.Context, req *wire.Request) ([]float64, error) {
	pc, err := c.get()
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
		return nil, &transientError{err: err}
	}
	req.ID = c.nextID.Add(1)
	req.Deadline = time.Time{}
	ioDeadline := time.Now().Add(c.ioTimeout)
	if d, ok := ctx.Deadline(); ok {
		req.Deadline = d
		if d.Before(ioDeadline) {
			ioDeadline = d.Add(100 * time.Millisecond) // allow the server's own deadline answer to arrive
		}
	}
	pc.nc.SetDeadline(ioDeadline)

	fail := func(err error) ([]float64, error) {
		pc.nc.Close()
		return nil, &transientError{err: err}
	}
	// failIntegrity marks the failure as a transport-integrity violation:
	// still retryable (a fresh connection carries no taint), but typed so
	// callers can distinguish "the network corrupted bytes" from "the
	// server rejected or failed the request".
	failIntegrity := func(err error) ([]float64, error) {
		pc.nc.Close()
		return nil, &transientError{err: fmt.Errorf("%w: %w", ErrIntegrity, err)}
	}
	if err := wire.WriteRequest(pc.bw, req); err != nil {
		return fail(err)
	}
	if err := pc.bw.Flush(); err != nil {
		return fail(err)
	}
	resp, err := wire.ReadResponse(pc.br)
	if err != nil {
		if errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrMagic) ||
			errors.Is(err, wire.ErrVersion) || errors.Is(err, wire.ErrFrameType) ||
			errors.Is(err, wire.ErrTooLarge) || errors.Is(err, wire.ErrMalformed) {
			return failIntegrity(err)
		}
		return fail(err)
	}
	if resp.ID != req.ID {
		// Stream desync (e.g. a stale response after a previous timeout on
		// this conn): the connection is unusable.
		return failIntegrity(fmt.Errorf("response id %d for request %d", resp.ID, req.ID))
	}
	c.put(pc)

	switch resp.Status {
	case wire.StatusOK:
		if want := wire.RespElems(req.Op, req.Width, req.Count, req.M); len(resp.Data) != want {
			return nil, fmt.Errorf("%w: result slab %d elements, want %d", ErrServer, len(resp.Data), want)
		}
		return resp.Data, nil
	case wire.StatusOverloaded:
		return nil, &transientError{
			err:        ErrOverloaded,
			retryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
		}
	case wire.StatusDeadlineExceeded:
		return nil, ErrDeadlineExceeded
	case wire.StatusBadRequest:
		return nil, ErrBadRequest
	default:
		return nil, fmt.Errorf("%w (status %v)", ErrServer, resp.Status)
	}
}
