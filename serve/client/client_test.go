package client

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multifloats/internal/testutil"
	"multifloats/mf"
	"multifloats/serve/wire"
)

// fakeServer speaks raw wire frames with a scripted per-request handler,
// so the client's retry/backoff behavior can be pinned without a real
// compute server. A nil response from the handler closes the connection
// (simulating a transient failure).
type fakeServer struct {
	ln       net.Listener
	requests atomic.Int64
	handler  func(n int64, req *wire.Request) *wire.Response
}

func newFakeServer(t *testing.T, handler func(n int64, req *wire.Request) *wire.Response) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handler: handler}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				bw := bufio.NewWriter(nc)
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					n := fs.requests.Add(1)
					resp := fs.handler(n, req)
					if resp == nil {
						return
					}
					if resp.ID == 0 {
						resp.ID = req.ID
					}
					if err := wire.WriteResponse(bw, resp); err != nil {
						return
					}
					bw.Flush()
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return fs
}

func okAdd2(req *wire.Request) *wire.Response {
	x := wire.Unpack2(req.X)
	y := wire.Unpack2(req.Y)
	out := make([]mf.Float64x2, len(x))
	for i := range x {
		out[i] = x[i].Add(y[i])
	}
	return &wire.Response{Status: wire.StatusOK, Data: wire.Pack2(out)}
}

func TestRetryAfterOverload(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if n <= 2 {
			return &wire.Response{Status: wire.StatusOverloaded, RetryAfterMs: 2}
		}
		return okAdd2(req)
	})
	c, err := Dial(fs.ln.Addr().String(), WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Add2(context.Background(), mf.New2(1.0), mf.New2(2.0))
	if err != nil {
		t.Fatalf("Add2 after overloads: %v", err)
	}
	if got.Float() != 3 {
		t.Fatalf("got %v", got)
	}
	if n := fs.requests.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 overloads + success)", n)
	}
}

func TestRetryAfterConnDrop(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if n == 1 {
			return nil // slam the connection shut mid-request
		}
		return okAdd2(req)
	})
	c, err := Dial(fs.ln.Addr().String(), WithBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Add2(context.Background(), mf.New2(4.0), mf.New2(5.0))
	if err != nil {
		t.Fatalf("Add2 after conn drop: %v", err)
	}
	if got.Float() != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestNoRetryOnBadRequest(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusBadRequest}
	})
	c, err := Dial(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Add2(context.Background(), mf.New2(1.0), mf.New2(2.0))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if n := fs.requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on permanent failure)", n)
	}
}

func TestDeadlineNotRetried(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if req.Deadline.IsZero() {
			t.Error("request carried no deadline despite context deadline")
		}
		return &wire.Response{Status: wire.StatusDeadlineExceeded}
	})
	c, err := Dial(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err = c.Sqrt3(ctx, mf.New3(2.0))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if n := fs.requests.Load(); n != 1 {
		t.Fatalf("server saw %d requests, want 1", n)
	}
}

func TestRetriesExhausted(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		return &wire.Response{Status: wire.StatusOverloaded, RetryAfterMs: 1}
	})
	c, err := Dial(fs.ln.Addr().String(),
		WithMaxRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Mul4(context.Background(), mf.New4(1.0), mf.New4(2.0))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want wrapped ErrOverloaded", err)
	}
	if n := fs.requests.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", n)
	}
}

func TestIDMismatchPoisonsConn(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response {
		if n == 1 {
			// Deliver a stale-looking response: wrong ID.
			return &wire.Response{ID: req.ID + 7, Status: wire.StatusOK, Data: make([]float64, 2)}
		}
		return okAdd2(req)
	})
	c, err := Dial(fs.ln.Addr().String(), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Add2(context.Background(), mf.New2(2.0), mf.New2(3.0))
	if err != nil || got.Float() != 5 {
		t.Fatalf("Add2 = %v, %v; want 5 after one retry", got, err)
	}
	if n := fs.requests.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2", n)
	}
}

func TestClientClosed(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response { return okAdd2(req) })
	c, err := Dial(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if _, err := c.Add2(context.Background(), mf.New2(1.0), mf.New2(1.0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestCloseConcurrentWithCalls races Close against in-flight calls that
// are returning connections to the pool. The old pool closed its channel
// in Close, so a concurrent put could panic the process; now calls must
// either complete or fail cleanly. Run under -race to also catch flag
// ordering regressions.
func TestCloseConcurrentWithCalls(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response { return okAdd2(req) })
	for i := 0; i < 50; i++ {
		c, err := Dial(fs.ln.Addr().String(), WithMaxRetries(0))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Success or a clean error are both fine; the test is that
				// nothing panics while Close races the connection return.
				c.Add2(context.Background(), mf.New2(1.0), mf.New2(2.0))
			}()
		}
		c.Close()
		wg.Wait()
	}
}

// TestIntegrityFailureRetried: a response whose bytes were flipped after
// sealing (mismatched CRC32C trailer — exactly what a faulty network
// produces) is discarded and the call retried on a fresh connection.
func TestIntegrityFailureRetried(t *testing.T) {
	var seen atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					n := seen.Add(1)
					resp := okAdd2(req)
					resp.ID = req.ID
					var buf bytes.Buffer
					if err := wire.WriteResponse(&buf, resp); err != nil {
						return
					}
					frame := buf.Bytes()
					if n == 1 {
						// Flip one payload bit after sealing: the CRC32C
						// trailer no longer matches.
						frame[wire.HeaderSize+8] ^= 0x10
					}
					if _, err := nc.Write(frame); err != nil {
						return
					}
				}
			}()
		}
	}()

	c, err := Dial(ln.Addr().String(), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Add2(context.Background(), mf.New2(20.0), mf.New2(22.0))
	if err != nil {
		t.Fatalf("Add2 after corrupted response: %v", err)
	}
	if got.Float() != 42 {
		t.Fatalf("got %v, want 42", got)
	}
	if n := seen.Load(); n != 2 {
		t.Fatalf("server saw %d requests, want 2 (corrupted + clean retry)", n)
	}
}

func TestIntegrityFailureTyped(t *testing.T) {
	// Every response corrupted and no retries left: the surfaced error
	// must be ErrIntegrity (transport), not any application error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				br := bufio.NewReader(nc)
				for {
					req, err := wire.ReadRequest(br)
					if err != nil {
						return
					}
					resp := okAdd2(req)
					resp.ID = req.ID
					var buf bytes.Buffer
					if err := wire.WriteResponse(&buf, resp); err != nil {
						return
					}
					frame := buf.Bytes()
					frame[len(frame)-1] ^= 0xFF // trash the trailer itself
					if _, err := nc.Write(frame); err != nil {
						return
					}
				}
			}()
		}
	}()
	c, err := Dial(ln.Addr().String(), WithMaxRetries(1), WithBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Add2(context.Background(), mf.New2(1.0), mf.New2(2.0))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
	if errors.Is(err, ErrBadRequest) || errors.Is(err, ErrServer) || errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("integrity failure misclassified as application error: %v", err)
	}
}

func TestMismatchedLengthsRejectedLocally(t *testing.T) {
	fs := newFakeServer(t, func(n int64, req *wire.Request) *wire.Response { return okAdd2(req) })
	c, err := Dial(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Dot2(context.Background(), make([]mf.Float64x2, 3), make([]mf.Float64x2, 4))
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if n := fs.requests.Load(); n != 0 {
		t.Fatalf("request hit the wire despite local validation")
	}
}
