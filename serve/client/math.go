package client

import (
	"context"
	"fmt"

	"multifloats/mf"
	"multifloats/serve/wire"
)

// Transcendental operations. Unlike the arithmetic methods (Add2, …)
// these take the op as a parameter — the family is twenty functions wide
// and every member shares one wire shape, so a single method per width
// keeps the surface reviewable. Unary ops ignore y (pass the zero value
// or nil slice); wire.OpAtan2 takes (y-coordinate, x-coordinate) in
// (x, y) argument order, matching mf.Atan2F2(y, x); wire.OpPow's first
// operand is the base. Results are bit-identical to the corresponding
// local mf call — the server runs the exact same scalar kernels.

// mathOp validates op and issues the elementwise request.
func (c *Client) mathOp(ctx context.Context, op wire.Op, width int, x, y []float64) ([]float64, error) {
	if !op.Math() {
		return nil, fmt.Errorf("%w: %s is not a transcendental op", ErrBadRequest, op)
	}
	if op.Unary() {
		y = nil
	}
	return c.scalarOp(ctx, op, width, x, y)
}

// Math2 applies the transcendental op to one width-2 expansion remotely.
func (c *Client) Math2(ctx context.Context, op wire.Op, x, y mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.mathOp(ctx, op, 2, x[:], y[:])
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2(out), nil
}

// Math3 applies the transcendental op to one width-3 expansion remotely.
func (c *Client) Math3(ctx context.Context, op wire.Op, x, y mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.mathOp(ctx, op, 3, x[:], y[:])
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3(out), nil
}

// Math4 applies the transcendental op to one width-4 expansion remotely.
func (c *Client) Math4(ctx context.Context, op wire.Op, x, y mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.mathOp(ctx, op, 4, x[:], y[:])
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4(out), nil
}

// MathSlice2 applies the transcendental op elementwise in one request.
func (c *Client) MathSlice2(ctx context.Context, op wire.Op, x, y []mf.Float64x2) ([]mf.Float64x2, error) {
	out, err := c.mathOp(ctx, op, 2, wire.Pack2(x), wire.Pack2(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack2(out), nil
}

// MathSlice3 applies the transcendental op elementwise in one request.
func (c *Client) MathSlice3(ctx context.Context, op wire.Op, x, y []mf.Float64x3) ([]mf.Float64x3, error) {
	out, err := c.mathOp(ctx, op, 3, wire.Pack3(x), wire.Pack3(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack3(out), nil
}

// MathSlice4 applies the transcendental op elementwise in one request.
func (c *Client) MathSlice4(ctx context.Context, op wire.Op, x, y []mf.Float64x4) ([]mf.Float64x4, error) {
	out, err := c.mathOp(ctx, op, 4, wire.Pack4(x), wire.Pack4(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack4(out), nil
}
