package client

import (
	"context"
	"fmt"

	"multifloats/mf"
	"multifloats/serve/wire"
)

// Typed operations mirroring the mf package. Single-value calls
// (Add2, Sqrt3, …) cost one round trip each — the server's scheduler
// coalesces concurrent ones into shared slab executions. The slice
// variants (AddSlice2, …) apply the op elementwise to whole vectors in a
// single request and are the preferred shape for bulk work.

func (c *Client) scalarOp(ctx context.Context, op wire.Op, width int, x, y []float64) ([]float64, error) {
	count := len(x) / width
	if !op.Unary() && len(y) != len(x) {
		return nil, fmt.Errorf("%w: operand lengths %d and %d differ", ErrBadRequest, len(x)/width, len(y)/width)
	}
	return c.do(ctx, &wire.Request{Op: op, Width: width, Count: count, X: x, Y: y})
}

// ---------------------------------------------------------------- F2 ----

// Add2 returns x + y computed remotely.
func (c *Client) Add2(ctx context.Context, x, y mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpAdd, 2, x[:], y[:])
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2{out[0], out[1]}, nil
}

// Sub2 returns x - y computed remotely.
func (c *Client) Sub2(ctx context.Context, x, y mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpSub, 2, x[:], y[:])
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2{out[0], out[1]}, nil
}

// Mul2 returns x · y computed remotely.
func (c *Client) Mul2(ctx context.Context, x, y mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpMul, 2, x[:], y[:])
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2{out[0], out[1]}, nil
}

// Div2 returns x / y computed remotely.
func (c *Client) Div2(ctx context.Context, x, y mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpDiv, 2, x[:], y[:])
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2{out[0], out[1]}, nil
}

// Sqrt2 returns √x computed remotely.
func (c *Client) Sqrt2(ctx context.Context, x mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpSqrt, 2, x[:], nil)
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2{out[0], out[1]}, nil
}

// AddSlice2 returns x[i] + y[i] elementwise in one request.
func (c *Client) AddSlice2(ctx context.Context, x, y []mf.Float64x2) ([]mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpAdd, 2, wire.Pack2(x), wire.Pack2(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack2(out), nil
}

// MulSlice2 returns x[i] · y[i] elementwise in one request.
func (c *Client) MulSlice2(ctx context.Context, x, y []mf.Float64x2) ([]mf.Float64x2, error) {
	out, err := c.scalarOp(ctx, wire.OpMul, 2, wire.Pack2(x), wire.Pack2(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack2(out), nil
}

// Axpy2 returns y + alpha·x (elementwise), the remote AxpyF2.
func (c *Client) Axpy2(ctx context.Context, alpha mf.Float64x2, x, y []mf.Float64x2) ([]mf.Float64x2, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: axpy operand lengths %d and %d differ", ErrBadRequest, len(x), len(y))
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpAxpy, Width: 2, Count: len(x),
		Alpha: alpha[:], X: wire.Pack2(x), Y: wire.Pack2(y)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack2(out), nil
}

// Dot2 returns Σ x[i]·y[i], the remote DotF2Parallel.
func (c *Client) Dot2(ctx context.Context, x, y []mf.Float64x2) (mf.Float64x2, error) {
	if len(x) != len(y) {
		return mf.Float64x2{}, fmt.Errorf("%w: dot operand lengths %d and %d differ", ErrBadRequest, len(x), len(y))
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpDot, Width: 2, Count: len(x),
		X: wire.Pack2(x), Y: wire.Pack2(y)})
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2{out[0], out[1]}, nil
}

// Gemv2 returns A·x for a row-major n×m matrix A.
func (c *Client) Gemv2(ctx context.Context, a []mf.Float64x2, n, m int, x []mf.Float64x2) ([]mf.Float64x2, error) {
	if len(a) != n*m || len(x) != m {
		return nil, fmt.Errorf("%w: gemv shape a=%d x=%d, want %d/%d", ErrBadRequest, len(a), len(x), n*m, m)
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpGemv, Width: 2, Count: n, M: m,
		X: wire.Pack2(a), Y: wire.Pack2(x)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack2(out), nil
}

// Gemm2 returns A·B for row-major n×n matrices (the remote blocked GEMM).
func (c *Client) Gemm2(ctx context.Context, a, b []mf.Float64x2, n int) ([]mf.Float64x2, error) {
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("%w: gemm shape a=%d b=%d, want %d", ErrBadRequest, len(a), len(b), n*n)
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpGemm, Width: 2, Count: n,
		X: wire.Pack2(a), Y: wire.Pack2(b)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack2(out), nil
}

// ---------------------------------------------------------------- F3 ----

// Add3 returns x + y computed remotely.
func (c *Client) Add3(ctx context.Context, x, y mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpAdd, 3, x[:], y[:])
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3{out[0], out[1], out[2]}, nil
}

// Sub3 returns x - y computed remotely.
func (c *Client) Sub3(ctx context.Context, x, y mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpSub, 3, x[:], y[:])
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3{out[0], out[1], out[2]}, nil
}

// Mul3 returns x · y computed remotely.
func (c *Client) Mul3(ctx context.Context, x, y mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpMul, 3, x[:], y[:])
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3{out[0], out[1], out[2]}, nil
}

// Div3 returns x / y computed remotely.
func (c *Client) Div3(ctx context.Context, x, y mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpDiv, 3, x[:], y[:])
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3{out[0], out[1], out[2]}, nil
}

// Sqrt3 returns √x computed remotely.
func (c *Client) Sqrt3(ctx context.Context, x mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpSqrt, 3, x[:], nil)
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3{out[0], out[1], out[2]}, nil
}

// AddSlice3 returns x[i] + y[i] elementwise in one request.
func (c *Client) AddSlice3(ctx context.Context, x, y []mf.Float64x3) ([]mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpAdd, 3, wire.Pack3(x), wire.Pack3(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack3(out), nil
}

// MulSlice3 returns x[i] · y[i] elementwise in one request.
func (c *Client) MulSlice3(ctx context.Context, x, y []mf.Float64x3) ([]mf.Float64x3, error) {
	out, err := c.scalarOp(ctx, wire.OpMul, 3, wire.Pack3(x), wire.Pack3(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack3(out), nil
}

// Axpy3 returns y + alpha·x (elementwise).
func (c *Client) Axpy3(ctx context.Context, alpha mf.Float64x3, x, y []mf.Float64x3) ([]mf.Float64x3, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: axpy operand lengths %d and %d differ", ErrBadRequest, len(x), len(y))
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpAxpy, Width: 3, Count: len(x),
		Alpha: alpha[:], X: wire.Pack3(x), Y: wire.Pack3(y)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack3(out), nil
}

// Dot3 returns Σ x[i]·y[i].
func (c *Client) Dot3(ctx context.Context, x, y []mf.Float64x3) (mf.Float64x3, error) {
	if len(x) != len(y) {
		return mf.Float64x3{}, fmt.Errorf("%w: dot operand lengths %d and %d differ", ErrBadRequest, len(x), len(y))
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpDot, Width: 3, Count: len(x),
		X: wire.Pack3(x), Y: wire.Pack3(y)})
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3{out[0], out[1], out[2]}, nil
}

// Gemv3 returns A·x for a row-major n×m matrix A.
func (c *Client) Gemv3(ctx context.Context, a []mf.Float64x3, n, m int, x []mf.Float64x3) ([]mf.Float64x3, error) {
	if len(a) != n*m || len(x) != m {
		return nil, fmt.Errorf("%w: gemv shape a=%d x=%d, want %d/%d", ErrBadRequest, len(a), len(x), n*m, m)
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpGemv, Width: 3, Count: n, M: m,
		X: wire.Pack3(a), Y: wire.Pack3(x)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack3(out), nil
}

// Gemm3 returns A·B for row-major n×n matrices.
func (c *Client) Gemm3(ctx context.Context, a, b []mf.Float64x3, n int) ([]mf.Float64x3, error) {
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("%w: gemm shape a=%d b=%d, want %d", ErrBadRequest, len(a), len(b), n*n)
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpGemm, Width: 3, Count: n,
		X: wire.Pack3(a), Y: wire.Pack3(b)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack3(out), nil
}

// ---------------------------------------------------------------- F4 ----

// Add4 returns x + y computed remotely.
func (c *Client) Add4(ctx context.Context, x, y mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpAdd, 4, x[:], y[:])
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4{out[0], out[1], out[2], out[3]}, nil
}

// Sub4 returns x - y computed remotely.
func (c *Client) Sub4(ctx context.Context, x, y mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpSub, 4, x[:], y[:])
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4{out[0], out[1], out[2], out[3]}, nil
}

// Mul4 returns x · y computed remotely.
func (c *Client) Mul4(ctx context.Context, x, y mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpMul, 4, x[:], y[:])
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4{out[0], out[1], out[2], out[3]}, nil
}

// Div4 returns x / y computed remotely.
func (c *Client) Div4(ctx context.Context, x, y mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpDiv, 4, x[:], y[:])
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4{out[0], out[1], out[2], out[3]}, nil
}

// Sqrt4 returns √x computed remotely.
func (c *Client) Sqrt4(ctx context.Context, x mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpSqrt, 4, x[:], nil)
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4{out[0], out[1], out[2], out[3]}, nil
}

// AddSlice4 returns x[i] + y[i] elementwise in one request.
func (c *Client) AddSlice4(ctx context.Context, x, y []mf.Float64x4) ([]mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpAdd, 4, wire.Pack4(x), wire.Pack4(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack4(out), nil
}

// MulSlice4 returns x[i] · y[i] elementwise in one request.
func (c *Client) MulSlice4(ctx context.Context, x, y []mf.Float64x4) ([]mf.Float64x4, error) {
	out, err := c.scalarOp(ctx, wire.OpMul, 4, wire.Pack4(x), wire.Pack4(y))
	if err != nil {
		return nil, err
	}
	return wire.Unpack4(out), nil
}

// Axpy4 returns y + alpha·x (elementwise).
func (c *Client) Axpy4(ctx context.Context, alpha mf.Float64x4, x, y []mf.Float64x4) ([]mf.Float64x4, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("%w: axpy operand lengths %d and %d differ", ErrBadRequest, len(x), len(y))
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpAxpy, Width: 4, Count: len(x),
		Alpha: alpha[:], X: wire.Pack4(x), Y: wire.Pack4(y)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack4(out), nil
}

// Dot4 returns Σ x[i]·y[i].
func (c *Client) Dot4(ctx context.Context, x, y []mf.Float64x4) (mf.Float64x4, error) {
	if len(x) != len(y) {
		return mf.Float64x4{}, fmt.Errorf("%w: dot operand lengths %d and %d differ", ErrBadRequest, len(x), len(y))
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpDot, Width: 4, Count: len(x),
		X: wire.Pack4(x), Y: wire.Pack4(y)})
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4{out[0], out[1], out[2], out[3]}, nil
}

// Gemv4 returns A·x for a row-major n×m matrix A.
func (c *Client) Gemv4(ctx context.Context, a []mf.Float64x4, n, m int, x []mf.Float64x4) ([]mf.Float64x4, error) {
	if len(a) != n*m || len(x) != m {
		return nil, fmt.Errorf("%w: gemv shape a=%d x=%d, want %d/%d", ErrBadRequest, len(a), len(x), n*m, m)
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpGemv, Width: 4, Count: n, M: m,
		X: wire.Pack4(a), Y: wire.Pack4(x)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack4(out), nil
}

// Gemm4 returns A·B for row-major n×n matrices.
func (c *Client) Gemm4(ctx context.Context, a, b []mf.Float64x4, n int) ([]mf.Float64x4, error) {
	if len(a) != n*n || len(b) != n*n {
		return nil, fmt.Errorf("%w: gemm shape a=%d b=%d, want %d", ErrBadRequest, len(a), len(b), n*n)
	}
	out, err := c.do(ctx, &wire.Request{Op: wire.OpGemm, Width: 4, Count: n,
		X: wire.Pack4(a), Y: wire.Pack4(b)})
	if err != nil {
		return nil, err
	}
	return wire.Unpack4(out), nil
}
