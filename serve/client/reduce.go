package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"multifloats/mf"
	"multifloats/serve/wire"
)

// Streaming exact reductions. SumExact/DotExact compute the correctly
// rounded sum or dot product of arbitrarily long operands on the
// server's superaccumulator (internal/exact): the operand is split into
// chunks of WithReduceChunk elements, streamed pipelined over one
// pooled connection under a single request ID, folded server-side as
// the chunks arrive, and rounded once at the end. Results are
// bit-identical to the local exact.Sum/Dot calls — for every chunk
// size, chunk order, and server worker count.
//
// Retry unit: the whole stream. A chunk is never retried individually
// (server accumulator state lives on the connection it started on), so
// a transport failure discards the connection and restarts the
// reduction from scratch on a fresh one under a fresh ID — a partial
// fold can never be double-counted.

// reduceWindow caps unacknowledged in-flight chunks, so an arbitrarily
// long stream cannot deadlock both peers' flow-control windows on
// unread acks (the server acknowledges every chunk).
const reduceWindow = 64

// SumExact returns the correctly rounded sum of xs, computed remotely.
func (c *Client) SumExact(ctx context.Context, xs []float64) (float64, error) {
	out, err := c.reduce(ctx, wire.OpSumExact, 1, xs, nil)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// DotExact returns the correctly rounded dot product of x and y,
// computed remotely.
func (c *Client) DotExact(ctx context.Context, x, y []float64) (float64, error) {
	out, err := c.reduce(ctx, wire.OpDotExact, 1, x, y)
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// SumExact2 returns the sum of the expansion values in xs as the
// canonical width-2 expansion of the exact result, computed remotely.
func (c *Client) SumExact2(ctx context.Context, xs []mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.reduce(ctx, wire.OpSumExact, 2, wire.Pack2(xs), nil)
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2(out), nil
}

// SumExact3 is SumExact2 at width 3.
func (c *Client) SumExact3(ctx context.Context, xs []mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.reduce(ctx, wire.OpSumExact, 3, wire.Pack3(xs), nil)
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3(out), nil
}

// SumExact4 is SumExact2 at width 4.
func (c *Client) SumExact4(ctx context.Context, xs []mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.reduce(ctx, wire.OpSumExact, 4, wire.Pack4(xs), nil)
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4(out), nil
}

// DotExact2 returns the dot product of the expansion vectors x and y as
// the canonical width-2 expansion of the exact result, computed
// remotely.
func (c *Client) DotExact2(ctx context.Context, x, y []mf.Float64x2) (mf.Float64x2, error) {
	out, err := c.reduce(ctx, wire.OpDotExact, 2, wire.Pack2(x), wire.Pack2(y))
	if err != nil {
		return mf.Float64x2{}, err
	}
	return mf.Float64x2(out), nil
}

// DotExact3 is DotExact2 at width 3.
func (c *Client) DotExact3(ctx context.Context, x, y []mf.Float64x3) (mf.Float64x3, error) {
	out, err := c.reduce(ctx, wire.OpDotExact, 3, wire.Pack3(x), wire.Pack3(y))
	if err != nil {
		return mf.Float64x3{}, err
	}
	return mf.Float64x3(out), nil
}

// DotExact4 is DotExact2 at width 4.
func (c *Client) DotExact4(ctx context.Context, x, y []mf.Float64x4) (mf.Float64x4, error) {
	out, err := c.reduce(ctx, wire.OpDotExact, 4, wire.Pack4(x), wire.Pack4(y))
	if err != nil {
		return mf.Float64x4{}, err
	}
	return mf.Float64x4(out), nil
}

// reduce runs one reduction over the width-w component slabs x (and y
// for dot). Operands that fit one chunk go through the ordinary
// single-request path; longer ones stream.
func (c *Client) reduce(ctx context.Context, op wire.Op, width int, x, y []float64) ([]float64, error) {
	if op == wire.OpDotExact && len(y) != len(x) {
		return nil, fmt.Errorf("%w: operand lengths %d and %d differ", ErrBadRequest, len(x)/width, len(y)/width)
	}
	count := len(x) / width
	if count <= c.reduceChunk {
		return c.do(ctx, &wire.Request{Op: op, Width: width, Count: count, M: wire.FlagReduceFinal, X: x, Y: y})
	}
	return c.withRetries(ctx, func() ([]float64, error) {
		return c.tryReduce(ctx, op, width, x, y, count)
	})
}

// tryReduce performs one whole-stream attempt on one pooled connection:
// write chunks pipelined (bounded by reduceWindow), read acks as they
// come back, take the result from the final response.
func (c *Client) tryReduce(ctx context.Context, op wire.Op, width int, x, y []float64, count int) ([]float64, error) {
	pc, err := c.get()
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
		return nil, &transientError{err: err}
	}
	id := c.nextID.Add(1)
	var deadline time.Time
	ioDeadline := time.Now().Add(c.ioTimeout)
	if d, ok := ctx.Deadline(); ok {
		deadline = d
		if d.Before(ioDeadline) {
			ioDeadline = d.Add(100 * time.Millisecond)
		}
	}
	pc.nc.SetDeadline(ioDeadline)

	fail := func(err error) ([]float64, error) {
		pc.nc.Close()
		return nil, &transientError{err: err}
	}
	failIntegrity := func(err error) ([]float64, error) {
		pc.nc.Close()
		return nil, &transientError{err: fmt.Errorf("%w: %w", ErrIntegrity, err)}
	}

	chunk := c.reduceChunk
	nchunks := (count + chunk - 1) / chunk
	var result []float64
	read := 0
	// readOne consumes the next response in stream order. Any non-OK
	// status poisons the stream mid-flight (responses for already-written
	// chunks may still be in the pipe), so every failure path closes the
	// connection; the permanent statuses surface as permanent errors.
	readOne := func() ([]float64, error) {
		resp, err := wire.ReadResponse(pc.br)
		if err != nil {
			if errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrMagic) ||
				errors.Is(err, wire.ErrVersion) || errors.Is(err, wire.ErrFrameType) ||
				errors.Is(err, wire.ErrTooLarge) || errors.Is(err, wire.ErrMalformed) {
				return failIntegrity(err)
			}
			return fail(err)
		}
		if resp.ID != id {
			return failIntegrity(fmt.Errorf("response id %d for request %d", resp.ID, id))
		}
		final := read == nchunks-1
		read++
		switch resp.Status {
		case wire.StatusOK:
		case wire.StatusOverloaded:
			pc.nc.Close()
			return nil, &transientError{
				err:        ErrOverloaded,
				retryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
			}
		case wire.StatusDeadlineExceeded:
			pc.nc.Close()
			return nil, ErrDeadlineExceeded
		case wire.StatusBadRequest:
			pc.nc.Close()
			return nil, ErrBadRequest
		default:
			pc.nc.Close()
			return nil, fmt.Errorf("%w (status %v)", ErrServer, resp.Status)
		}
		if final {
			if len(resp.Data) != width {
				pc.nc.Close()
				return nil, fmt.Errorf("%w: result slab %d elements, want %d", ErrServer, len(resp.Data), width)
			}
			result = resp.Data
		} else if len(resp.Data) != 0 {
			return failIntegrity(fmt.Errorf("chunk ack carried %d elements", len(resp.Data)))
		}
		return nil, nil
	}

	for s := 0; s < nchunks; s++ {
		lo, hi := s*chunk, min((s+1)*chunk, count)
		req := &wire.Request{
			ID: id, Deadline: deadline, Op: op, Width: width,
			Count: hi - lo, X: x[lo*width : hi*width],
		}
		if s == nchunks-1 {
			req.M = wire.FlagReduceFinal
		}
		if op == wire.OpDotExact {
			req.Y = y[lo*width : hi*width]
		}
		if err := wire.WriteRequest(pc.bw, req); err != nil {
			return fail(err)
		}
		// Keep at most reduceWindow chunks unacknowledged.
		if s+1-read >= reduceWindow {
			if err := pc.bw.Flush(); err != nil {
				return fail(err)
			}
			if _, err := readOne(); err != nil {
				return nil, err
			}
		}
	}
	if err := pc.bw.Flush(); err != nil {
		return fail(err)
	}
	for read < nchunks {
		if _, err := readOne(); err != nil {
			return nil, err
		}
	}
	c.put(pc)
	return result, nil
}
