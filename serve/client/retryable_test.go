package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"multifloats/mf"
	"multifloats/serve/wire"
)

// TestIsRetryable pins the public classification for every typed error,
// each produced by a real client call against a scripted peer — not by
// hand-wrapping — so the predicate and the error paths cannot drift.
func TestIsRetryable(t *testing.T) {
	ctx := context.Background()
	status := func(st wire.Status, retryMs uint32) func(int64, *wire.Request) *wire.Response {
		return func(int64, *wire.Request) *wire.Response {
			return &wire.Response{Status: st, RetryAfterMs: retryMs}
		}
	}
	cases := []struct {
		name      string
		err       func(t *testing.T) error
		retryable bool
		is        error // sentinel the error must unwrap to, nil to skip
	}{
		{"overloaded-budget-exhausted", func(t *testing.T) error {
			fs := newFakeServer(t, status(wire.StatusOverloaded, 1))
			c, err := Dial(fs.ln.Addr().String(), WithMaxRetries(1), WithBackoff(time.Millisecond, 2*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, true, ErrOverloaded},
		{"conn-drop", func(t *testing.T) error {
			fs := newFakeServer(t, func(int64, *wire.Request) *wire.Response { return nil })
			c, err := Dial(fs.ln.Addr().String(), WithMaxRetries(0))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, true, nil},
		{"dial-failure", func(t *testing.T) error {
			c, err := Dial("127.0.0.1:1", WithLazyDial(), WithMaxRetries(0), WithDialTimeout(200*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, true, nil},
		{"integrity", func(t *testing.T) error {
			fs := newFakeServer(t, func(_ int64, req *wire.Request) *wire.Response {
				return &wire.Response{ID: req.ID + 1, Status: wire.StatusOK, Data: make([]float64, 2)}
			})
			c, err := Dial(fs.ln.Addr().String(), WithMaxRetries(0))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, true, ErrIntegrity},
		{"deadline", func(t *testing.T) error {
			fs := newFakeServer(t, status(wire.StatusDeadlineExceeded, 0))
			c, err := Dial(fs.ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, false, ErrDeadlineExceeded},
		{"bad-request", func(t *testing.T) error {
			fs := newFakeServer(t, status(wire.StatusBadRequest, 0))
			c, err := Dial(fs.ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, false, ErrBadRequest},
		{"server-error", func(t *testing.T) error {
			fs := newFakeServer(t, status(wire.Status(200), 0))
			c, err := Dial(fs.ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, false, ErrServer},
		{"closed", func(t *testing.T) error {
			fs := newFakeServer(t, func(_ int64, req *wire.Request) *wire.Response { return okAdd2(req) })
			c, err := Dial(fs.ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			c.Close()
			_, err = c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, false, ErrClosed},
		{"context-canceled", func(t *testing.T) error {
			fs := newFakeServer(t, func(_ int64, req *wire.Request) *wire.Response { return okAdd2(req) })
			c, err := Dial(fs.ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			_, err = c.Add2(cctx, mf.New2(1.0), mf.New2(2.0))
			return err
		}, false, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err(t)
			if err == nil {
				t.Fatal("call unexpectedly succeeded")
			}
			if got := IsRetryable(err); got != tc.retryable {
				t.Fatalf("IsRetryable(%v) = %v, want %v", err, got, tc.retryable)
			}
			if tc.is != nil && !errors.Is(err, tc.is) {
				t.Fatalf("err %v does not unwrap to %v", err, tc.is)
			}
		})
	}
	if IsRetryable(nil) {
		t.Fatal("IsRetryable(nil) = true")
	}
	if IsRetryable(errors.New("arbitrary")) {
		t.Fatal("IsRetryable(arbitrary) = true")
	}
}

// TestLazyDial: a client to a dead backend constructs fine lazily,
// fails retryably while the backend is down, and recovers once the
// backend exists — the proxy's backend-restart lifecycle in miniature.
func TestLazyDial(t *testing.T) {
	ctx := context.Background()
	if _, err := Dial("127.0.0.1:1", WithDialTimeout(200*time.Millisecond)); err == nil {
		t.Fatal("eager Dial to a dead address succeeded")
	}
	fs := newFakeServer(t, func(_ int64, req *wire.Request) *wire.Response { return okAdd2(req) })
	addr := fs.ln.Addr().String()
	fs.ln.Close() // now dead, but the port is known

	c, err := Dial(addr, WithLazyDial(), WithMaxRetries(0), WithDialTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatalf("lazy Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Add2(ctx, mf.New2(1.0), mf.New2(2.0)); !IsRetryable(err) {
		t.Fatalf("call against dead backend: err %v, want retryable", err)
	}
}

// TestDoForwardsShape: Do sends Op/Width/Count/M/Hops as given — the
// proxy's forwarding contract — and validates the response slab length
// for the request's shape.
func TestDoForwardsShape(t *testing.T) {
	var seen *wire.Request
	fs := newFakeServer(t, func(_ int64, req *wire.Request) *wire.Response {
		seen = req
		return &wire.Response{Status: wire.StatusOK, Data: make([]float64, wire.RespElems(req.Op, req.Width, req.Count, req.M))}
	})
	c, err := Dial(fs.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := &wire.Request{Op: wire.OpSumExact, Width: 3, Count: 2, Hops: 2,
		M: wire.FlagReduceFinal | wire.FlagReduceRaw, X: make([]float64, 6)}
	data, err := c.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(data) != wire.ReduceRawElems {
		t.Fatalf("raw final returned %d elements", len(data))
	}
	if seen.Hops != 2 || seen.M != wire.FlagReduceFinal|wire.FlagReduceRaw || seen.Op != wire.OpSumExact || seen.Width != 3 {
		t.Fatalf("server saw %+v", seen)
	}
}
