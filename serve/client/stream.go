package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"multifloats/serve/wire"
)

// ReduceStream is the incremental reduction API: one reduction stream
// on one pooled connection, fed chunk by chunk by the caller instead of
// from a pre-assembled slab. It exists for forwarding callers — a proxy
// relaying a downstream client's chunks as they arrive — and therefore
// does NOT retry internally: any failure poisons the stream, the
// connection is discarded, and the error is typed so the caller can
// decide (IsRetryable) whether to replay the stream elsewhere. The
// whole-slab SumExact/DotExact calls remain the right API for ordinary
// use; they retry the whole stream themselves.
//
// Not safe for concurrent use. Every ReduceStream must end in exactly
// one Finish or Abort, or its connection leaks.
type ReduceStream struct {
	c        *Client
	pc       *poolConn
	ctx      context.Context
	id       uint64
	op       wire.Op
	width    int
	hops     int
	deadline time.Time
	sent     int // chunks written
	read     int // acks consumed
	err      error
	done     bool
}

// StartReduce opens a reduction stream for op at the given expansion
// width. hops is the proxy-hop count stamped on every chunk (0 for
// direct callers). The request deadline is taken from ctx.
func (c *Client) StartReduce(ctx context.Context, op wire.Op, width, hops int) (*ReduceStream, error) {
	if !op.Reduction() {
		return nil, fmt.Errorf("%w: %v is not a reduction", ErrBadRequest, op)
	}
	pc, err := c.get()
	if err != nil {
		if errors.Is(err, ErrClosed) {
			return nil, err
		}
		return nil, &transientError{err: err}
	}
	s := &ReduceStream{c: c, pc: pc, ctx: ctx, id: c.nextID.Add(1), op: op, width: width, hops: hops}
	if d, ok := ctx.Deadline(); ok {
		s.deadline = d
	}
	s.refreshIODeadline()
	return s, nil
}

// refreshIODeadline re-arms the connection deadline so a long stream
// of timely chunks is never killed by a budget sized for one exchange.
func (s *ReduceStream) refreshIODeadline() {
	io := time.Now().Add(s.c.ioTimeout)
	if !s.deadline.IsZero() && s.deadline.Before(io) {
		io = s.deadline.Add(100 * time.Millisecond)
	}
	s.pc.nc.SetDeadline(io)
}

// fail poisons the stream: the connection (which may hold server-side
// accumulator state and unread acks) is closed, never pooled.
func (s *ReduceStream) fail(err error) error {
	s.pc.nc.Close()
	s.done = true
	s.err = err
	return err
}

func (s *ReduceStream) failTransient(err error) error {
	return s.fail(&transientError{err: err})
}

func (s *ReduceStream) failIntegrity(err error) error {
	return s.fail(&transientError{err: fmt.Errorf("%w: %w", ErrIntegrity, err)})
}

// writeChunk writes one chunk frame and enforces the ack window.
func (s *ReduceStream) writeChunk(m, count int, x, y []float64) error {
	if s.done {
		if s.err != nil {
			return s.err
		}
		return fmt.Errorf("%w: reduction stream already finished", ErrClosed)
	}
	if err := s.ctx.Err(); err != nil {
		return s.fail(err)
	}
	s.refreshIODeadline()
	req := &wire.Request{
		ID: s.id, Deadline: s.deadline, Op: s.op, Width: s.width,
		Hops: s.hops, Count: count, M: m, X: x, Y: y,
	}
	if err := wire.WriteRequest(s.pc.bw, req); err != nil {
		return s.failTransient(err)
	}
	s.sent++
	if s.sent-s.read >= reduceWindow {
		if err := s.pc.bw.Flush(); err != nil {
			return s.failTransient(err)
		}
		if _, err := s.readOne(false, false); err != nil {
			return err
		}
	}
	return nil
}

// readOne consumes the next in-order response. For the final response
// it returns the result slab, validated against the requested shape.
func (s *ReduceStream) readOne(final, raw bool) ([]float64, error) {
	resp, err := wire.ReadResponse(s.pc.br)
	if err != nil {
		if errors.Is(err, wire.ErrChecksum) || errors.Is(err, wire.ErrMagic) ||
			errors.Is(err, wire.ErrVersion) || errors.Is(err, wire.ErrFrameType) ||
			errors.Is(err, wire.ErrTooLarge) || errors.Is(err, wire.ErrMalformed) {
			return nil, s.failIntegrity(err)
		}
		return nil, s.failTransient(err)
	}
	if resp.ID != s.id {
		return nil, s.failIntegrity(fmt.Errorf("response id %d for request %d", resp.ID, s.id))
	}
	s.read++
	switch resp.Status {
	case wire.StatusOK:
	case wire.StatusOverloaded:
		return nil, s.fail(&transientError{
			err:        ErrOverloaded,
			retryAfter: time.Duration(resp.RetryAfterMs) * time.Millisecond,
		})
	case wire.StatusDeadlineExceeded:
		return nil, s.fail(ErrDeadlineExceeded)
	case wire.StatusBadRequest:
		return nil, s.fail(ErrBadRequest)
	default:
		return nil, s.fail(fmt.Errorf("%w (status %v)", ErrServer, resp.Status))
	}
	if !final {
		if len(resp.Data) != 0 {
			return nil, s.failIntegrity(fmt.Errorf("chunk ack carried %d elements", len(resp.Data)))
		}
		return nil, nil
	}
	want := s.width
	if raw {
		want = wire.ReduceRawElems
	}
	if len(resp.Data) != want {
		return nil, s.fail(fmt.Errorf("%w: result slab %d elements, want %d", ErrServer, len(resp.Data), want))
	}
	return resp.Data, nil
}

// Send streams one non-final chunk of count elements: x (and y for dot)
// are width-w component slabs of count·width floats. The slabs are
// consumed before Send returns and may be reused.
func (s *ReduceStream) Send(count int, x, y []float64) error {
	return s.writeChunk(0, count, x, y)
}

// Finish streams the final chunk (count may be 0 for an empty final)
// and returns the reduction result: the width-w rounded expansion, or,
// with raw, the wire.ReduceRawElems-word serialized accumulator
// (exact.DecodeFloats) for shard merging. On success the connection
// returns to the pool.
func (s *ReduceStream) Finish(count int, x, y []float64, raw bool) ([]float64, error) {
	m := wire.FlagReduceFinal
	if raw {
		m |= wire.FlagReduceRaw
	}
	if err := s.writeChunk(m, count, x, y); err != nil {
		return nil, err
	}
	if err := s.pc.bw.Flush(); err != nil {
		return nil, s.failTransient(err)
	}
	var result []float64
	for s.read < s.sent {
		final := s.read == s.sent-1
		data, err := s.readOne(final, raw)
		if err != nil {
			return nil, err
		}
		if final {
			result = data
		}
	}
	s.done = true
	s.c.put(s.pc)
	return result, nil
}

// Abort abandons the stream. The connection is closed, not pooled: the
// server still holds accumulator state for this stream, and acks for
// already-written chunks may be in flight — the conn cannot be reused.
func (s *ReduceStream) Abort() {
	if s.done {
		return
	}
	s.done = true
	s.err = fmt.Errorf("%w: reduction stream aborted", ErrClosed)
	s.pc.nc.Close()
}
