package client

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"multifloats/internal/exact"
	"multifloats/serve/server"
	"multifloats/serve/wire"
)

func startStreamServer(t *testing.T) *server.Server {
	t.Helper()
	s := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s
}

// TestReduceStreamIncremental drives the incremental API chunk by chunk
// — more chunks than the ack window, so windowed reads are exercised —
// and demands bit parity with the local fold, in both rounded and raw
// form.
func TestReduceStreamIncremental(t *testing.T) {
	srv := startStreamServer(t)
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	rng := rand.New(rand.NewSource(5))
	const chunks, per = 150, 3 // 150 chunks > reduceWindow
	var want exact.Accumulator
	xs := make([][]float64, chunks)
	for i := range xs {
		xs[i] = make([]float64, per)
		for j := range xs[i] {
			xs[i][j] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(500)-250)
			want.Add(xs[i][j])
		}
	}

	for _, raw := range []bool{false, true} {
		s, err := c.StartReduce(ctx, wire.OpSumExact, 1, 0)
		if err != nil {
			t.Fatalf("raw=%v: StartReduce: %v", raw, err)
		}
		for i := 0; i < chunks-1; i++ {
			if err := s.Send(per, xs[i], nil); err != nil {
				t.Fatalf("raw=%v: Send(%d): %v", raw, i, err)
			}
		}
		got, err := s.Finish(per, xs[chunks-1], nil, raw)
		if err != nil {
			t.Fatalf("raw=%v: Finish: %v", raw, err)
		}
		if raw {
			acc, err := exact.DecodeFloats(got)
			if err != nil {
				t.Fatalf("DecodeFloats: %v", err)
			}
			if math.Float64bits(acc.Sum()) != math.Float64bits(want.Sum()) {
				t.Fatalf("raw fold = %x, want %x", acc.Sum(), want.Sum())
			}
		} else {
			if len(got) != 1 || math.Float64bits(got[0]) != math.Float64bits(want.Sum()) {
				t.Fatalf("rounded = %v, want %v", got, want.Sum())
			}
		}
		// The stream is spent: further sends must fail closed.
		if err := s.Send(per, xs[0], nil); err == nil {
			t.Fatalf("raw=%v: Send after Finish succeeded", raw)
		}
	}
}

// TestReduceStreamDot covers the dot-product form at width 2.
func TestReduceStreamDot(t *testing.T) {
	srv := startStreamServer(t)
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	x := []float64{1.5, 0x1p-80, -2.25, 0x1p-90, 3.0, 0}
	y := []float64{2.0, 0, 4.0, 0x1p-70, -1.0, 0x1p-100}
	var want exact.Accumulator
	want.AddDotSlab(2, x, y)

	s, err := c.StartReduce(context.Background(), wire.OpDotExact, 2, 1)
	if err != nil {
		t.Fatalf("StartReduce: %v", err)
	}
	if err := s.Send(2, x[:4], y[:4]); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := s.Finish(1, x[4:], y[4:], false)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	we := want.SumExpansion(2)
	for k := range we {
		if math.Float64bits(got[k]) != math.Float64bits(we[k]) {
			t.Fatalf("component %d = %x, want %x", k, got[k], we[k])
		}
	}
}

// TestReduceStreamAbort: an aborted stream closes its connection and a
// fresh stream on the same client works; the abandoned server-side
// accumulator is released with the connection.
func TestReduceStreamAbort(t *testing.T) {
	srv := startStreamServer(t)
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	s, err := c.StartReduce(ctx, wire.OpSumExact, 1, 0)
	if err != nil {
		t.Fatalf("StartReduce: %v", err)
	}
	if err := s.Send(2, []float64{1, 2}, nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	s.Abort()
	if err := s.Send(1, []float64{3}, nil); err == nil {
		t.Fatal("Send after Abort succeeded")
	}

	s2, err := c.StartReduce(ctx, wire.OpSumExact, 1, 0)
	if err != nil {
		t.Fatalf("StartReduce after abort: %v", err)
	}
	got, err := s2.Finish(1, []float64{42}, nil, false)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got[0] != 42 {
		t.Fatalf("got %v", got)
	}
}
