package proxy

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"multifloats/serve/wire"
)

// Content-addressed result cache.
//
// Every op in this system is bit-deterministic: the same operand bit
// patterns produce the same result bit patterns, always (the paper's
// branch-free kernels; the exact superaccumulator for reductions). So
// a response cached under the canonical digest of a request's operand
// bits is not "probably fresh" — it is *the* answer, exactly, and a
// cache hit can never serve a stale or approximate result. The one
// caveat is fleet homogeneity for parallel BLAS kernels, whose
// reduction trees depend on the worker count: replicas must run equal
// Workers for their BLAS answers to be interchangeable (DESIGN.md
// §3.4); scalar ops and exact reductions are bit-identical at any
// worker count.
//
// The key is sha256 over (op, width, count, m, alpha bits, x bits,
// y bits) — raw IEEE-754 Float64bits, so bit-distinct NaN payloads,
// -0 vs +0, and subnormals all key distinctly, exactly as the wire
// encodes them. Request ID, deadline, and hop count are volatile
// routing metadata and are excluded. Keys are computed only from
// frames that already passed CRC32C verification on ingress: a
// corrupted frame is torn down before it can ever mint a key.

// keyFixed is the canonical key prefix: op, width, count, m — each as
// a little-endian u32 (wider than the wire's bytes so no field can
// alias another's range).
const keyFixed = 16

var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// fillKey writes the canonical key material for req into buf, which
// the caller sized to exactly keyFixed+8·(len α+x+y). Raw bit patterns
// only — no float formatting, no canonicalization — so every
// bit-distinct operand yields distinct material.
//
//mf:hotpath
func fillKey(buf []byte, req *wire.Request) {
	binary.LittleEndian.PutUint32(buf[0:], uint32(req.Op))
	binary.LittleEndian.PutUint32(buf[4:], uint32(req.Width))
	binary.LittleEndian.PutUint32(buf[8:], uint32(req.Count))
	binary.LittleEndian.PutUint32(buf[12:], uint32(req.M))
	o := keyFixed
	for _, f := range req.Alpha {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(f))
		o += 8
	}
	for _, f := range req.X {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(f))
		o += 8
	}
	for _, f := range req.Y {
		binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(f))
		o += 8
	}
}

// cacheKey returns the canonical content digest of req. The scratch
// buffer is pooled; the digest is a value, so nothing escapes.
func cacheKey(req *wire.Request) [sha256.Size]byte {
	n := keyFixed + 8*(len(req.Alpha)+len(req.X)+len(req.Y))
	bp := keyBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	b := (*bp)[:n]
	fillKey(b, req)
	sum := sha256.Sum256(b)
	keyBufPool.Put(bp)
	return sum
}

// ringHash derives the consistent-hash point from the same digest, so
// routing and caching agree on request identity.
func ringHash(key *[sha256.Size]byte) uint64 {
	return binary.LittleEndian.Uint64(key[:8])
}

// resultCache is a byte-bounded LRU over response slabs. Values are
// stored and returned by reference: a cached slab is immutable by
// convention (it is only ever encoded onto the wire).
type resultCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recent; values are *cacheEntry
	m     map[[sha256.Size]byte]*list.Element
	stats *Stats
}

type cacheEntry struct {
	key  [sha256.Size]byte
	data []float64
}

// entryCost approximates an entry's footprint: slab bytes plus map,
// list, and header overhead.
func entryCost(data []float64) int64 { return int64(len(data)*8) + 128 }

func newResultCache(maxBytes int64, stats *Stats) *resultCache {
	if maxBytes <= 0 {
		return nil
	}
	return &resultCache{
		max:   maxBytes,
		ll:    list.New(),
		m:     make(map[[sha256.Size]byte]*list.Element),
		stats: stats,
	}
}

func (c *resultCache) get(key [sha256.Size]byte) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

func (c *resultCache) put(key [sha256.Size]byte, data []float64) {
	if c == nil {
		return
	}
	cost := entryCost(data)
	if cost > c.max {
		return // larger than the whole budget; never cacheable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		// Determinism makes a same-key value collision impossible unless a
		// backend is broken; keep the existing entry (first write wins).
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.bytes += cost
	c.stats.cacheSize(cost)
	for c.bytes > c.max {
		el := c.ll.Back()
		if el == nil {
			break
		}
		ent := c.ll.Remove(el).(*cacheEntry)
		delete(c.m, ent.key)
		freed := entryCost(ent.data)
		c.bytes -= freed
		c.stats.cacheSize(-freed)
	}
}
