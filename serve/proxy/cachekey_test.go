package proxy

// Cache-key canonicalization property tests: the content-addressed key
// must treat every distinct operand BIT pattern as a distinct identity
// (NaN payloads, -0 vs +0, subnormal tails — a float-value comparison
// would merge them) and must never collide across ops, widths, shapes,
// or operand slots. It must also exclude volatile routing metadata
// (ID, deadline, hop count), or the cache would never hit.

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"multifloats/internal/diffuzz"
	"multifloats/serve/wire"
)

func keyOf(req *wire.Request) [32]byte { return cacheKey(req) }

func TestCacheKeyBitDistinctSpecials(t *testing.T) {
	base := &wire.Request{Op: wire.OpAdd, Width: 2, Count: 1,
		X: []float64{1.0, 0}, Y: []float64{2.0, 0}}

	// Bit-distinct payloads that compare equal (or unordered) as floats.
	variants := [][2]uint64{
		// two distinct quiet-NaN payloads
		{0x7ff8000000000001, 0x7ff8000000000002},
		// quiet vs signaling NaN
		{0x7ff8000000000000, 0x7ff0000000000001},
		// NaN sign bit
		{0x7ff8000000000000, 0xfff8000000000000},
		// +0 vs -0
		{0x0000000000000000, 0x8000000000000000},
		// subnormals one ulp apart
		{0x0000000000000001, 0x0000000000000002},
		// smallest normal vs largest subnormal
		{0x0010000000000000, 0x000fffffffffffff},
	}
	for i, v := range variants {
		a, b := *base, *base
		a.X = []float64{math.Float64frombits(v[0]), 0}
		b.X = []float64{math.Float64frombits(v[1]), 0}
		ka, kb := keyOf(&a), keyOf(&b)
		if ka == kb {
			t.Errorf("variant %d: bit patterns %#x and %#x share a cache key", i, v[0], v[1])
		}
	}
}

func TestCacheKeyExcludesRoutingMetadata(t *testing.T) {
	a := &wire.Request{ID: 1, Op: wire.OpMul, Width: 3, Count: 1,
		X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}}
	b := &wire.Request{ID: 999, Op: wire.OpMul, Width: 3, Count: 1,
		Deadline: time.Now().Add(time.Hour), Hops: wire.MaxProxyHops,
		X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}}
	if keyOf(a) != keyOf(b) {
		t.Fatal("ID/deadline/hops leaked into the cache key; identical content must hit")
	}
}

func TestCacheKeyNoCrossFieldCollisions(t *testing.T) {
	mk := func() *wire.Request {
		return &wire.Request{Op: wire.OpAdd, Width: 2, Count: 1,
			X: []float64{1.5, -3.25}, Y: []float64{2.5, 0.125}}
	}
	base := keyOf(mk())

	r := mk()
	r.Op = wire.OpSub
	if keyOf(r) == base {
		t.Error("op change did not change the key")
	}
	r = mk()
	r.Width = 4
	if keyOf(r) == base {
		t.Error("width change did not change the key")
	}
	r = mk()
	r.Count = 2
	if keyOf(r) == base {
		t.Error("count change did not change the key")
	}
	r = mk()
	r.M = 7
	if keyOf(r) == base {
		t.Error("m change did not change the key")
	}
	// Operand-slot swap: same multiset of bits, different roles.
	r = mk()
	r.X, r.Y = r.Y, r.X
	if keyOf(r) == base {
		t.Error("x/y swap did not change the key")
	}
}

// TestCacheKeyFlipAnyBit is the core property: flipping ANY single bit
// of ANY operand word produces a different key, on adversarial operands
// from diffuzz (NaNs, infinities, subnormals, zeros included).
func TestCacheKeyFlipAnyBit(t *testing.T) {
	gen := diffuzz.NewGen(42)
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(6)
		req := &wire.Request{Op: wire.OpDot, Width: 2, Count: n,
			X: make([]float64, 0, 2*n), Y: make([]float64, 0, 2*n)}
		for i := 0; i < n; i++ {
			req.X = append(req.X, gen.BlasElement(2)...)
			req.Y = append(req.Y, gen.BlasElement(2)...)
		}
		if rng.Intn(4) == 0 {
			req.X[rng.Intn(len(req.X))] = gen.SpecialValue()
		}
		base := keyOf(req)

		slot := req.X
		if rng.Intn(2) == 1 {
			slot = req.Y
		}
		i := rng.Intn(len(slot))
		bit := uint(rng.Intn(64))
		orig := slot[i]
		slot[i] = math.Float64frombits(math.Float64bits(orig) ^ (1 << bit))
		if keyOf(req) == base {
			t.Fatalf("round %d: flipping bit %d of %#x did not change the key",
				round, bit, math.Float64bits(orig))
		}
		slot[i] = orig
		if keyOf(req) != base {
			t.Fatalf("round %d: key is not a pure function of content", round)
		}
	}
}

// TestCacheKeyAgreesWithRouting pins that routing and caching share one
// identity: the ring hash is derived from the same digest.
func TestCacheKeyAgreesWithRouting(t *testing.T) {
	req := &wire.Request{Op: wire.OpSqrt, Width: 2, Count: 1, X: []float64{2, 0}}
	k1, k2 := keyOf(req), keyOf(req)
	if ringHash(&k1) != ringHash(&k2) {
		t.Fatal("ring hash is not deterministic in the key")
	}
}

func TestResultCacheLRUBound(t *testing.T) {
	var st Stats
	// Room for ~2 entries of 8 floats (cost 64+128 = 192 each).
	c := newResultCache(400, &st)
	keys := make([][32]byte, 4)
	for i := range keys {
		keys[i][0] = byte(i + 1)
		c.put(keys[i], make([]float64, 8))
	}
	if got := st.CacheBytes.Load(); got > 400 {
		t.Fatalf("cache exceeded its byte bound: %d > 400", got)
	}
	if _, ok := c.get(keys[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.get(keys[3]); !ok {
		t.Error("newest entry was evicted")
	}
	// First write wins on a same-key re-put.
	v := []float64{1, 2}
	c.put(keys[3], v)
	if got, _ := c.get(keys[3]); len(got) == 2 {
		t.Error("second put replaced the first-written value")
	}
	// Disabled cache is nil and inert.
	var nilCache *resultCache
	if nc := newResultCache(-1, &st); nc != nil {
		t.Fatal("negative budget must disable the cache")
	}
	nilCache.put(keys[0], v)
	if _, ok := nilCache.get(keys[0]); ok {
		t.Error("nil cache returned a value")
	}
}
