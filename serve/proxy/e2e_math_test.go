package proxy

// Transcendental ops through the cluster tier: proxied math requests
// must be bit-identical to local mf calls (miss path computes on a
// backend), and a repeat of the same request must be served from the
// content-addressed cache with byte-identical bits — including NaN
// collapse results and Payne–Hanek huge-argument trig.

import (
	"context"
	"math"
	"testing"

	"multifloats/internal/diffuzz"
	"multifloats/mf"
	"multifloats/serve/wire"
)

func TestProxyMathParityAndCache(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	b1 := startBackendAt(t, "127.0.0.1:0")
	p := startProxy(t, Config{
		Backends: []string{b0.addr(), b1.addr()},
		Seed:     5,
	})
	cl := dialProxy(t, p)
	ctx := context.Background()
	gen := diffuzz.NewGen(333)

	ops := []wire.Op{wire.OpExp, wire.OpLog, wire.OpSin, wire.OpTan,
		wire.OpCbrt, wire.OpPow, wire.OpAtan2, wire.OpHypot}
	type captured struct {
		x, y mf.Float64x2
		got  mf.Float64x2
	}
	local := func(op wire.Op, x, y mf.Float64x2) mf.Float64x2 {
		switch op {
		case wire.OpExp:
			return x.Exp()
		case wire.OpLog:
			return x.Log()
		case wire.OpSin:
			return x.Sin()
		case wire.OpTan:
			return x.Tan()
		case wire.OpCbrt:
			return x.Cbrt()
		case wire.OpPow:
			return x.Pow(y)
		case wire.OpAtan2:
			return mf.Atan2F2(x, y)
		default:
			return x.Hypot(y)
		}
	}

	const rounds = 12
	caps := make(map[wire.Op][]captured, len(ops))
	for i := 0; i < rounds; i++ {
		for _, op := range ops {
			var c captured
			lead := 200
			if op == wire.OpExp {
				lead = 9
			}
			if op == wire.OpSin || op == wire.OpTan {
				lead = 600 // Payne–Hanek range through the cluster
			}
			if op == wire.OpPow {
				lead = 3
			}
			copy(c.x[:], gen.Expansion(2, lead))
			copy(c.y[:], gen.Expansion(2, lead))
			got, err := cl.Math2(ctx, op, c.x, c.y)
			if err != nil {
				t.Fatalf("round %d Math2(%s): %v", i, op, err)
			}
			if want := local(op, c.x, c.y); !eqb2(got, want) {
				t.Fatalf("round %d Math2(%s) parity: x=%v y=%v got=%v want=%v", i, op, c.x, c.y, got, want)
			}
			c.got = got
			caps[op] = append(caps[op], c)
		}
	}
	missesAfterPass1 := p.stats.CacheMisses.Load()
	if missesAfterPass1 == 0 {
		t.Fatal("pass one produced no cache misses; cache not in the math path")
	}

	// Pass two: identical requests must hit and return identical bits.
	for _, op := range ops {
		for i, c := range caps[op] {
			got, err := cl.Math2(ctx, op, c.x, c.y)
			if err != nil || !eqb2(got, c.got) {
				t.Fatalf("round %d cached Math2(%s) drifted: %v", i, op, err)
			}
		}
	}
	st := p.stats.Snapshot()
	if st.CacheHits < int64(rounds*len(ops)) {
		t.Errorf("CacheHits = %d after repeating %d math requests", st.CacheHits, rounds*len(ops))
	}
	if st.CacheMisses != missesAfterPass1 {
		t.Errorf("repeat pass missed: misses %d -> %d", missesAfterPass1, st.CacheMisses)
	}

	// NaN-collapse results are content-addressed like any other: the
	// cached bits must replay exactly (NaN payload included).
	nanX := mf.Float64x2{math.NaN(), 0}
	first, err := cl.Math2(ctx, wire.OpLog, nanX, mf.Float64x2{})
	if err != nil {
		t.Fatalf("Math2(log, NaN): %v", err)
	}
	again, err := cl.Math2(ctx, wire.OpLog, nanX, mf.Float64x2{})
	if err != nil || math.Float64bits(again[0]) != math.Float64bits(first[0]) ||
		math.Float64bits(again[1]) != math.Float64bits(first[1]) {
		t.Fatalf("cached NaN collapse drifted: first=%v again=%v err=%v", first, again, err)
	}
}
