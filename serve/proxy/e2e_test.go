package proxy

// End-to-end cluster tests: a real proxy in front of real servers,
// driven by the real pooled client. Every completed response must be
// bit-identical to the corresponding in-process computation — under
// caching, failover, and mid-stream reduction resharding. Backends run
// Workers=1 so parallel BLAS reduction order matches the sequential
// local kernels (replica homogeneity, DESIGN.md §3.4); scalar ops and
// exact reductions are bit-identical at any worker count.

import (
	"bufio"
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"multifloats/internal/blas"
	"multifloats/internal/diffuzz"
	"multifloats/internal/exact"
	"multifloats/mf"
	"multifloats/serve/client"
	"multifloats/serve/server"
	"multifloats/serve/wire"
)

type testBackend struct {
	s    *server.Server
	done chan error
	once sync.Once
	t    *testing.T
}

func startBackendAt(t *testing.T, addr string) *testBackend {
	t.Helper()
	s := server.New(server.Config{Addr: addr, Workers: 1})
	if err := s.Listen(); err != nil {
		t.Fatalf("backend Listen(%s): %v", addr, err)
	}
	b := &testBackend{s: s, done: make(chan error, 1), t: t}
	go func() { b.done <- s.Serve() }()
	t.Cleanup(b.stop)
	return b
}

func (b *testBackend) addr() string { return b.s.Addr().String() }

// stop shuts the backend down (idempotent; used both for mid-test kills
// and cleanup).
func (b *testBackend) stop() {
	b.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := b.s.Shutdown(ctx); err != nil {
			b.t.Errorf("backend Shutdown: %v", err)
		}
		if err := <-b.done; err != nil {
			b.t.Errorf("backend Serve: %v", err)
		}
	})
}

func startProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("proxy New: %v", err)
	}
	if err := p.Listen(); err != nil {
		t.Fatalf("proxy Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := p.Shutdown(ctx); err != nil {
			t.Errorf("proxy Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("proxy Serve: %v", err)
		}
	})
	return p
}

func dialProxy(t *testing.T, p *Proxy, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(p.Addr().String(), opts...)
	if err != nil {
		t.Fatalf("Dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// flat1 draws m adversarial width-1 reduction elements as a flat slab.
func flat1(gen *diffuzz.Gen, m int) []float64 {
	v := gen.ReduceVector(1, m)
	out := make([]float64, 0, m)
	for _, e := range v {
		out = append(out, e...)
	}
	return out
}

func eqb2(a, b mf.Float64x2) bool {
	return math.Float64bits(a[0]) == math.Float64bits(b[0]) &&
		math.Float64bits(a[1]) == math.Float64bits(b[1])
}

// TestProxyParityAndCache drives diffuzz traffic through the cluster
// twice. Pass one: every result must be bit-identical to the local
// computation (proxied compute is exact). Pass two repeats the same
// requests: results must be byte-identical to pass one AND served from
// the cache — bit-determinism is what makes a content-addressed hit
// always exact.
func TestProxyParityAndCache(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	b1 := startBackendAt(t, "127.0.0.1:0")
	p := startProxy(t, Config{
		Backends: []string{b0.addr(), b1.addr()},
		Seed:     1,
	})
	cl := dialProxy(t, p)
	ctx := context.Background()
	gen := diffuzz.NewGen(99)

	const rounds = 30
	type captured struct {
		x2, y2   mf.Float64x2
		add, mul mf.Float64x2
		dx, dy   []mf.Float64x2
		dot      mf.Float64x2
		sumIn    []float64
		sum      float64
	}
	caps := make([]captured, rounds)

	for i := 0; i < rounds; i++ {
		c := &caps[i]
		copy(c.x2[:], gen.Expansion(2, 200))
		copy(c.y2[:], gen.Expansion(2, 200))

		got, err := cl.Add2(ctx, c.x2, c.y2)
		if err != nil || !eqb2(got, c.x2.Add(c.y2)) {
			t.Fatalf("round %d Add2 parity: %v", i, err)
		}
		c.add = got
		got, err = cl.Mul2(ctx, c.x2, c.y2)
		if err != nil || !eqb2(got, c.x2.Mul(c.y2)) {
			t.Fatalf("round %d Mul2 parity: %v", i, err)
		}
		c.mul = got

		n := 4 + i%5
		c.dx = make([]mf.Float64x2, n)
		c.dy = make([]mf.Float64x2, n)
		for j := range c.dx {
			copy(c.dx[j][:], gen.BlasElement(2))
			copy(c.dy[j][:], gen.BlasElement(2))
		}
		c.dot, err = cl.Dot2(ctx, c.dx, c.dy)
		if err != nil || !eqb2(c.dot, blas.DotF2Parallel(c.dx, c.dy, 1)) {
			t.Fatalf("round %d Dot2 parity: %v", i, err)
		}

		c.sumIn = flat1(gen, 16+i)
		c.sum, err = cl.SumExact(ctx, c.sumIn)
		if err != nil || math.Float64bits(c.sum) != math.Float64bits(exact.Sum(c.sumIn)) {
			t.Fatalf("round %d SumExact parity: %v", i, err)
		}
	}
	missesAfterPass1 := p.stats.CacheMisses.Load()
	if missesAfterPass1 == 0 {
		t.Fatal("pass one produced no cache misses; cache not in the path")
	}

	// Pass two: identical requests, identical bits, served hot.
	for i := 0; i < rounds; i++ {
		c := &caps[i]
		if got, err := cl.Add2(ctx, c.x2, c.y2); err != nil || !eqb2(got, c.add) {
			t.Fatalf("round %d cached Add2 drifted: %v", i, err)
		}
		if got, err := cl.Mul2(ctx, c.x2, c.y2); err != nil || !eqb2(got, c.mul) {
			t.Fatalf("round %d cached Mul2 drifted: %v", i, err)
		}
		if got, err := cl.Dot2(ctx, c.dx, c.dy); err != nil || !eqb2(got, c.dot) {
			t.Fatalf("round %d cached Dot2 drifted: %v", i, err)
		}
		if got, err := cl.SumExact(ctx, c.sumIn); err != nil ||
			math.Float64bits(got) != math.Float64bits(c.sum) {
			t.Fatalf("round %d cached SumExact drifted: %v", i, err)
		}
	}
	st := p.stats.Snapshot()
	if st.CacheHits < int64(rounds) {
		t.Errorf("CacheHits = %d after a full repeat pass of %d rounds × 4 ops", st.CacheHits, rounds)
	}
	if st.CacheMisses != missesAfterPass1 {
		t.Errorf("repeat pass missed: misses %d -> %d", missesAfterPass1, st.CacheMisses)
	}
	if st.CacheBytes <= 0 {
		t.Errorf("CacheBytes = %d, want > 0", st.CacheBytes)
	}
}

// TestProxyStreamedReductionParity shards a multi-chunk reduction
// stream across both backends and demands the merged result be
// bit-identical to the local superaccumulator fold.
func TestProxyStreamedReductionParity(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	b1 := startBackendAt(t, "127.0.0.1:0")
	p := startProxy(t, Config{
		Backends:     []string{b0.addr(), b1.addr()},
		ReduceShards: 2,
		Seed:         2,
	})
	// Tiny chunks so a modest vector becomes a long stream.
	cl := dialProxy(t, p, client.WithReduceChunk(8))
	ctx := context.Background()
	gen := diffuzz.NewGen(7)

	for round := 0; round < 4; round++ {
		xs := flat1(gen, 300+round)
		got, err := cl.SumExact(ctx, xs)
		if err != nil {
			t.Fatalf("round %d SumExact: %v", round, err)
		}
		if want := exact.Sum(xs); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d sharded SumExact = %x, local = %x", round,
				math.Float64bits(got), math.Float64bits(want))
		}

		n := 200 + round
		x2 := make([]mf.Float64x2, n)
		for i := range x2 {
			copy(x2[i][:], gen.BlasElement(2))
		}
		got2, err := cl.SumExact2(ctx, x2)
		if err != nil {
			t.Fatalf("round %d SumExact2: %v", round, err)
		}
		if want2 := exact.Sum2(x2); !eqb2(got2, want2) {
			t.Fatalf("round %d sharded SumExact2 mismatch", round)
		}
	}
	st := p.stats.Snapshot()
	if st.Reductions < 8 {
		t.Errorf("Reductions = %d, want >= 8 (stream path not exercised)", st.Reductions)
	}
	if st.ReduceChunks < 8*10 {
		t.Errorf("ReduceChunks = %d; chunking did not happen", st.ReduceChunks)
	}
	if st.Reshards != 0 {
		t.Errorf("Reshards = %d with no failures injected", st.Reshards)
	}
}

// TestProxyReductionReshardMidStream kills the backend holding live
// shard streams in the middle of a reduction and requires the stream to
// complete bit-exactly anyway, by replaying the dead shard's chunks to
// the surviving backend.
func TestProxyReductionReshardMidStream(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	b1 := startBackendAt(t, "127.0.0.1:0")
	backends := []*testBackend{b0, b1}
	p := startProxy(t, Config{
		Backends:     []string{b0.addr(), b1.addr()},
		ReduceShards: 2,
		Seed:         3,
		ClientOptions: []client.Option{
			client.WithMaxRetries(0),
			client.WithDialTimeout(500 * time.Millisecond),
		},
	})
	cl := dialProxy(t, p)
	ctx := context.Background()
	gen := diffuzz.NewGen(11)

	s, err := cl.StartReduce(ctx, wire.OpSumExact, 1, 0)
	if err != nil {
		t.Fatalf("StartReduce: %v", err)
	}
	var all []float64
	sendChunks := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			chunk := flat1(gen, 5)
			all = append(all, chunk...)
			if err := s.Send(len(chunk), chunk, nil); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
	}

	// Enough chunks that the client's ack window has cycled: the proxy
	// has provably opened both shard streams.
	sendChunks(80)

	// Kill a backend that is actually holding shard streams (in-flight
	// charge > 0 means live upstream streams are parked on it).
	victim := -1
	for i := range backends {
		if p.router.backends[i].inflight.Load() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no backend holds a shard stream after 80 chunks")
	}
	backends[victim].stop()

	// The stream must survive: dead shard replayed onto the survivor.
	sendChunks(80)
	got, err := s.Finish(0, nil, nil, false)
	if err != nil {
		t.Fatalf("Finish after backend kill: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("Finish returned %d words, want 1", len(got))
	}
	want := exact.Sum(all)
	if math.Float64bits(got[0]) != math.Float64bits(want) {
		t.Fatalf("resharded sum = %x, local = %x", math.Float64bits(got[0]), math.Float64bits(want))
	}
	if p.stats.Reshards.Load() == 0 {
		t.Error("backend died mid-stream yet Reshards = 0")
	}
}

// TestProxyUnaryFailover kills one backend and requires every
// subsequent unary request to succeed via failover, the dead backend to
// be ejected, and — after it comes back on the same address — a probe
// to reinstate it.
func TestProxyUnaryFailover(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	b1 := startBackendAt(t, "127.0.0.1:0")
	addr0 := b0.addr()
	p := startProxy(t, Config{
		Backends:      []string{addr0, b1.addr()},
		CacheBytes:    -1, // force every request upstream
		FailThreshold: 2,
		ProbeAfter:    30 * time.Millisecond,
		Seed:          4,
		ClientOptions: []client.Option{
			client.WithMaxRetries(0),
			client.WithDialTimeout(300 * time.Millisecond),
		},
	})
	cl := dialProxy(t, p)
	ctx := context.Background()
	gen := diffuzz.NewGen(21)

	do := func(i int) {
		t.Helper()
		var x, y mf.Float64x2
		copy(x[:], gen.Expansion(2, 60))
		copy(y[:], gen.Expansion(2, 60))
		got, err := cl.Add2(ctx, x, y)
		if err != nil {
			t.Fatalf("request %d failed despite a healthy replica: %v", i, err)
		}
		if !eqb2(got, x.Add(y)) {
			t.Fatalf("request %d: failover result not bit-exact", i)
		}
	}

	b0.stop()
	for i := 0; i < 40; i++ {
		do(i)
	}
	st := p.stats.Snapshot()
	if st.Failovers == 0 {
		t.Error("no failovers recorded with a dead backend in the ring")
	}
	if st.Ejections == 0 {
		t.Error("dead backend was never ejected")
	}

	// Resurrect it on the same address; probes must reinstate it.
	startBackendAt(t, addr0)
	deadline := time.Now().Add(5 * time.Second)
	for p.stats.Reinstates.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted backend never reinstated")
		}
		do(-1)
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProxyHopLoopReject sends a frame already at the proxy-hop ceiling
// and expects a BadRequest rejection instead of a forward — the loop
// guard.
func TestProxyHopLoopReject(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	p := startProxy(t, Config{Backends: []string{b0.addr()}, Seed: 5})

	nc, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	req := &wire.Request{ID: 1, Op: wire.OpAdd, Width: 2, Count: 1, Hops: wire.MaxProxyHops,
		X: []float64{1, 0}, Y: []float64{2, 0}}
	if err := wire.WriteRequest(bw, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	resp, err := wire.ReadResponse(bufio.NewReader(nc))
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("status = %v, want BadRequest", resp.Status)
	}
	if p.stats.LoopRejects.Load() != 1 {
		t.Fatalf("LoopRejects = %d, want 1", p.stats.LoopRejects.Load())
	}

	// One hop below the ceiling still goes through.
	req2 := &wire.Request{ID: 2, Op: wire.OpAdd, Width: 2, Count: 1, Hops: wire.MaxProxyHops - 1,
		X: []float64{1, 0}, Y: []float64{2, 0}}
	if err := wire.WriteRequest(bw, req2); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	resp2, err := wire.ReadResponse(bufio.NewReader(nc))
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if resp2.Status != wire.StatusOK {
		t.Fatalf("status below ceiling = %v, want OK", resp2.Status)
	}
}

// TestProxyDrain verifies graceful shutdown: in-flight work completes,
// and the listener stops accepting.
func TestProxyDrain(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	p, err := New(Config{Backends: []string{b0.addr()}, Seed: 6})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := p.Addr().String()
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := cl.Add2(context.Background(), mf.New2(1.0), mf.New2(2.0)); err != nil {
		t.Fatalf("Add2: %v", err)
	}
	cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
