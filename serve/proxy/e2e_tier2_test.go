package proxy

// Proxy-behind-proxy end-to-end coverage: a two-tier mfproxy chain in
// front of real backends must stay bit-exact (scalar ops, reductions,
// and cached repeats), and the ProxyHop accounting must be correct
// through the chain — each tier increments the hop count exactly once,
// which is proven behaviorally at the wire limit: a chain of exactly
// wire.MaxProxyHops tiers still serves traffic, and one tier more is
// loop-rejected by the innermost proxy, not forwarded to a backend.

import (
	"context"
	"math"
	"testing"

	"multifloats/internal/blas"
	"multifloats/internal/diffuzz"
	"multifloats/internal/exact"
	"multifloats/mf"
	"multifloats/serve/wire"
)

// startChain starts tiers proxies in front of the backends, outermost
// last; it returns the chain outermost-first.
func startChain(t *testing.T, tiers int, backends ...string) []*Proxy {
	t.Helper()
	chain := make([]*Proxy, tiers)
	upstream := backends
	for i := tiers - 1; i >= 0; i-- {
		p := startProxy(t, Config{Backends: upstream, Seed: int64(100 + i)})
		chain[i] = p
		upstream = []string{p.Addr().String()}
	}
	return chain
}

// TestProxyBehindProxy drives diffuzz traffic through two stacked
// proxies and checks every response bit-identical against the local
// computation, then repeats the pass and requires the outer tier to
// serve it from cache without drifting a bit.
func TestProxyBehindProxy(t *testing.T) {
	b0 := startBackendAt(t, "127.0.0.1:0")
	b1 := startBackendAt(t, "127.0.0.1:0")
	chain := startChain(t, 2, b0.addr(), b1.addr())
	outer, inner := chain[0], chain[1]
	cl := dialProxy(t, outer)
	ctx := context.Background()
	gen := diffuzz.NewGen(77)

	const rounds = 12
	type captured struct {
		x2, y2   mf.Float64x2
		add, mul mf.Float64x2
		dx, dy   []mf.Float64x2
		dot      mf.Float64x2
		sumIn    []float64
		sum      float64
	}
	caps := make([]captured, rounds)
	for i := 0; i < rounds; i++ {
		c := &caps[i]
		copy(c.x2[:], gen.Expansion(2, 200))
		copy(c.y2[:], gen.Expansion(2, 200))
		var err error
		c.add, err = cl.Add2(ctx, c.x2, c.y2)
		if err != nil || !eqb2(c.add, c.x2.Add(c.y2)) {
			t.Fatalf("round %d two-tier Add2 parity: %v", i, err)
		}
		c.mul, err = cl.Mul2(ctx, c.x2, c.y2)
		if err != nil || !eqb2(c.mul, c.x2.Mul(c.y2)) {
			t.Fatalf("round %d two-tier Mul2 parity: %v", i, err)
		}
		n := 4 + i%5
		c.dx = make([]mf.Float64x2, n)
		c.dy = make([]mf.Float64x2, n)
		for j := range c.dx {
			copy(c.dx[j][:], gen.BlasElement(2))
			copy(c.dy[j][:], gen.BlasElement(2))
		}
		c.dot, err = cl.Dot2(ctx, c.dx, c.dy)
		if err != nil || !eqb2(c.dot, blas.DotF2Parallel(c.dx, c.dy, 1)) {
			t.Fatalf("round %d two-tier Dot2 parity: %v", i, err)
		}
		c.sumIn = flat1(gen, 16+i)
		c.sum, err = cl.SumExact(ctx, c.sumIn)
		if err != nil || math.Float64bits(c.sum) != math.Float64bits(exact.Sum(c.sumIn)) {
			t.Fatalf("round %d two-tier SumExact parity: %v", i, err)
		}
	}

	// Both tiers must actually be in the path.
	if outer.stats.Requests.Load() == 0 || inner.stats.Requests.Load() == 0 {
		t.Fatalf("tier traffic: outer %d, inner %d requests — a tier is being bypassed",
			outer.stats.Requests.Load(), inner.stats.Requests.Load())
	}

	// Repeat pass: byte-identical, and the outer tier serves it hot.
	hitsBefore := outer.stats.CacheHits.Load()
	for i := 0; i < rounds; i++ {
		c := &caps[i]
		if got, err := cl.Add2(ctx, c.x2, c.y2); err != nil || !eqb2(got, c.add) {
			t.Fatalf("round %d cached two-tier Add2 drifted: %v", i, err)
		}
		if got, err := cl.Mul2(ctx, c.x2, c.y2); err != nil || !eqb2(got, c.mul) {
			t.Fatalf("round %d cached two-tier Mul2 drifted: %v", i, err)
		}
		if got, err := cl.Dot2(ctx, c.dx, c.dy); err != nil || !eqb2(got, c.dot) {
			t.Fatalf("round %d cached two-tier Dot2 drifted: %v", i, err)
		}
		if got, err := cl.SumExact(ctx, c.sumIn); err != nil ||
			math.Float64bits(got) != math.Float64bits(c.sum) {
			t.Fatalf("round %d cached two-tier SumExact drifted: %v", i, err)
		}
	}
	if hits := outer.stats.CacheHits.Load() - hitsBefore; hits < 2*rounds {
		t.Errorf("outer tier CacheHits grew by %d over a repeat pass of %d rounds × 3 cacheable ops", hits, rounds)
	}
}

// TestProxyHopAccounting pins the hop arithmetic end to end. A chain of
// exactly wire.MaxProxyHops tiers must serve traffic (the innermost
// tier forwards with Hops = MaxProxyHops, which the backend accepts),
// so each tier provably increments the count exactly once — a double
// increment would trip the cap early, a missing one would let the next
// test case pass. One tier beyond the cap must be rejected by the
// innermost proxy without reaching a backend.
func TestProxyHopAccounting(t *testing.T) {
	b := startBackendAt(t, "127.0.0.1:0")

	// Exactly at the cap: still bit-exact.
	atCap := startChain(t, wire.MaxProxyHops, b.addr())
	cl := dialProxy(t, atCap[0])
	ctx := context.Background()
	x := mf.Float64x2{1.5, 0x1p-60}
	y := mf.Float64x2{2.25, -0x1p-61}
	got, err := cl.Add2(ctx, x, y)
	if err != nil || !eqb2(got, x.Add(y)) {
		t.Fatalf("Add2 through %d tiers (the hop cap): %v", wire.MaxProxyHops, err)
	}

	// One past the cap: the innermost tier loop-rejects; no backend
	// traffic for the request.
	served := b.s.Stats().Requests.Load()
	over := startChain(t, wire.MaxProxyHops+1, b.addr())
	clOver := dialProxy(t, over[0])
	if _, err := clOver.Add2(ctx, x, y); err == nil {
		t.Fatalf("Add2 through %d tiers succeeded past the hop cap", wire.MaxProxyHops+1)
	}
	innermost := over[len(over)-1]
	if innermost.stats.LoopRejects.Load() == 0 {
		t.Error("innermost tier recorded no LoopRejects past the hop cap")
	}
	if b.s.Stats().Requests.Load() != served {
		t.Error("a past-the-cap request reached the backend")
	}
}
