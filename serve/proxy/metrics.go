package proxy

import (
	"expvar"
	"sync/atomic"
)

// Stats are per-Proxy atomic counters, mirrored into the process-wide
// "mfproxy.*" expvar namespace (served at /debug/vars when the daemon's
// debug listener is enabled) — same split as serve/server's Stats:
// tests assert on an instance, operators scrape one namespace.
type Stats struct {
	Requests       atomic.Int64 // frames accepted off the wire
	Responses      atomic.Int64 // frames written back downstream
	CacheHits      atomic.Int64 // responses served from the result cache
	CacheMisses    atomic.Int64 // cacheable requests that went upstream
	CacheBytes     atomic.Int64 // current cache footprint
	Failovers      atomic.Int64 // attempts re-routed to another backend
	Ejections      atomic.Int64 // backends ejected for consecutive failures
	Reinstates     atomic.Int64 // ejected backends restored by a probe
	LoopRejects    atomic.Int64 // requests rejected at the proxy-hop limit
	Overloads      atomic.Int64 // requests answered StatusOverloaded
	DeadlineMisses atomic.Int64 // requests answered StatusDeadlineExceeded
	ProtocolErrors atomic.Int64 // malformed frames / bad requests
	ChecksumErrors atomic.Int64 // ingress frames rejected on CRC32C mismatch
	IdleTimeouts   atomic.Int64 // connections closed for idling/stalling
	ActiveConns    atomic.Int64
	ReduceChunks   atomic.Int64 // reduction chunks forwarded to shards
	Reductions     atomic.Int64 // reduction streams completed downstream
	Reshards       atomic.Int64 // reduction shard streams replayed on failover
}

// Snapshot is a plain-struct copy for JSON reporting.
type Snapshot struct {
	Requests       int64 `json:"requests"`
	Responses      int64 `json:"responses"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheBytes     int64 `json:"cache_bytes"`
	Failovers      int64 `json:"failovers"`
	Ejections      int64 `json:"ejections"`
	Reinstates     int64 `json:"reinstates"`
	LoopRejects    int64 `json:"loop_rejects"`
	Overloads      int64 `json:"overloads"`
	DeadlineMisses int64 `json:"deadline_misses"`
	ProtocolErrors int64 `json:"protocol_errors"`
	ChecksumErrors int64 `json:"checksum_errors"`
	IdleTimeouts   int64 `json:"idle_timeouts"`
	ActiveConns    int64 `json:"active_conns"`
	ReduceChunks   int64 `json:"reduce_chunks"`
	Reductions     int64 `json:"reductions"`
	Reshards       int64 `json:"reshards"`
}

// Snapshot returns a consistent-enough point-in-time copy.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Requests:       s.Requests.Load(),
		Responses:      s.Responses.Load(),
		CacheHits:      s.CacheHits.Load(),
		CacheMisses:    s.CacheMisses.Load(),
		CacheBytes:     s.CacheBytes.Load(),
		Failovers:      s.Failovers.Load(),
		Ejections:      s.Ejections.Load(),
		Reinstates:     s.Reinstates.Load(),
		LoopRejects:    s.LoopRejects.Load(),
		Overloads:      s.Overloads.Load(),
		DeadlineMisses: s.DeadlineMisses.Load(),
		ProtocolErrors: s.ProtocolErrors.Load(),
		ChecksumErrors: s.ChecksumErrors.Load(),
		IdleTimeouts:   s.IdleTimeouts.Load(),
		ActiveConns:    s.ActiveConns.Load(),
		ReduceChunks:   s.ReduceChunks.Load(),
		Reductions:     s.Reductions.Load(),
		Reshards:       s.Reshards.Load(),
	}
}

var (
	evRequests       = expvar.NewInt("mfproxy.requests")
	evResponses      = expvar.NewInt("mfproxy.responses")
	evCacheHits      = expvar.NewInt("mfproxy.cache_hits")
	evCacheMisses    = expvar.NewInt("mfproxy.cache_misses")
	evCacheBytes     = expvar.NewInt("mfproxy.cache_bytes")
	evFailovers      = expvar.NewInt("mfproxy.failovers")
	evEjections      = expvar.NewInt("mfproxy.ejections")
	evReinstates     = expvar.NewInt("mfproxy.reinstates")
	evLoopRejects    = expvar.NewInt("mfproxy.loop_rejects")
	evOverloads      = expvar.NewInt("mfproxy.overloads")
	evDeadlineMisses = expvar.NewInt("mfproxy.deadline_misses")
	evProtocolErrors = expvar.NewInt("mfproxy.protocol_errors")
	evChecksumErrors = expvar.NewInt("mfproxy.checksum_errors")
	evIdleTimeouts   = expvar.NewInt("mfproxy.idle_timeouts")
	evConns          = expvar.NewInt("mfproxy.conns")
	evReduceChunks   = expvar.NewInt("mfproxy.reduce_chunks")
	evReductions     = expvar.NewInt("mfproxy.reductions")
	evReshards       = expvar.NewInt("mfproxy.reshards")
)

func (s *Stats) reqIn()     { s.Requests.Add(1); evRequests.Add(1) }
func (s *Stats) respOut()   { s.Responses.Add(1); evResponses.Add(1) }
func (s *Stats) cacheHit()  { s.CacheHits.Add(1); evCacheHits.Add(1) }
func (s *Stats) cacheMiss() { s.CacheMisses.Add(1); evCacheMisses.Add(1) }
func (s *Stats) cacheSize(d int64) {
	s.CacheBytes.Add(d)
	evCacheBytes.Add(d)
}
func (s *Stats) failover()    { s.Failovers.Add(1); evFailovers.Add(1) }
func (s *Stats) ejection()    { s.Ejections.Add(1); evEjections.Add(1) }
func (s *Stats) reinstate()   { s.Reinstates.Add(1); evReinstates.Add(1) }
func (s *Stats) loopReject()  { s.LoopRejects.Add(1); evLoopRejects.Add(1) }
func (s *Stats) overload()    { s.Overloads.Add(1); evOverloads.Add(1) }
func (s *Stats) deadline()    { s.DeadlineMisses.Add(1); evDeadlineMisses.Add(1) }
func (s *Stats) protoErr()    { s.ProtocolErrors.Add(1); evProtocolErrors.Add(1) }
func (s *Stats) checksumErr() { s.ChecksumErrors.Add(1); evChecksumErrors.Add(1) }
func (s *Stats) idleTimeout() { s.IdleTimeouts.Add(1); evIdleTimeouts.Add(1) }
func (s *Stats) connOpen()    { s.ActiveConns.Add(1); evConns.Add(1) }
func (s *Stats) connClose()   { s.ActiveConns.Add(-1); evConns.Add(-1) }
func (s *Stats) reduceChunk() { s.ReduceChunks.Add(1); evReduceChunks.Add(1) }
func (s *Stats) reduceDone()  { s.Reductions.Add(1); evReductions.Add(1) }
func (s *Stats) reshard()     { s.Reshards.Add(1); evReshards.Add(1) }
