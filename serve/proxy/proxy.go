// Package proxy implements mfproxy: a wire-v2-speaking L7 cluster tier
// in front of N mfserved backends. It routes single-frame requests by
// consistent hash over the request's canonical operand-bit digest with
// bounded-load rebalancing (route.go), serves repeated requests from a
// content-addressed LRU result cache that bit-determinism makes always
// exact (cache.go), shards streaming reductions across backends and
// merges their raw superaccumulators (reduce.go), and fails attempts
// over between replicas on the client package's typed retryable errors
// with per-backend health scoring.
//
// The proxy adds no new trust boundary: ingress frames are CRC32C-
// verified by wire.ReadRequest before anything (routing, caching) sees
// them, upstream traffic rides the pooled serve/client (which verifies
// response CRCs), and egress frames are sealed by wire.WriteResponse.
// Proxy loops are structurally impossible past wire.MaxProxyHops: each
// tier increments the frame's hop count and rejects at the ceiling.
package proxy

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"multifloats/serve/client"
	"multifloats/serve/wire"
)

// Config tunes a Proxy. Zero values take the documented defaults.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Backends are the mfserved addresses (1..64 of them). Connections
	// are established lazily, so backends may be down at proxy start.
	Backends []string
	// CacheBytes bounds the result cache (default 64 MiB; negative
	// disables caching).
	CacheBytes int64
	// MaxInflight bounds concurrently forwarded single-frame requests;
	// beyond it the proxy answers StatusOverloaded (default 1024).
	MaxInflight int
	// FailThreshold is the consecutive retryable-failure count that
	// ejects a backend (default 3).
	FailThreshold int
	// ProbeAfter is the ejection cooldown before a backend is probed
	// half-open; up to 50% seeded jitter is added (default 500ms).
	ProbeAfter time.Duration
	// LoadFactor is the bounded-load multiple of the fleet-average
	// in-flight count a backend may carry (default 1.25).
	LoadFactor float64
	// ReduceShards is how many backends a streamed reduction is split
	// across (default 2, clamped to len(Backends)).
	ReduceShards int
	// ReplayBudget bounds the bytes of chunks buffered per reduction
	// stream for failover replay; past it the stream completes normally
	// but a shard failure fails the stream instead of resharding
	// (default 32 MiB). The downstream client's whole-stream retry is
	// the backstop either way — results are never inexact.
	ReplayBudget int64
	// Seed seeds the probe-jitter RNG (0 takes a time-based seed). Fixed
	// seeds make chaos campaigns reproducible.
	Seed int64
	// IdleTimeout bounds the wait for a downstream connection's next
	// complete frame (default 2 minutes; negative disables).
	IdleTimeout time.Duration
	// WriteTimeout bounds each downstream response write+flush (default
	// 30 seconds; negative disables).
	WriteTimeout time.Duration
	// ClientOptions are appended to every backend client's options —
	// the hook for fault-injecting dialers and test-sized tuning.
	ClientOptions []client.Option
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 500 * time.Millisecond
	}
	if c.LoadFactor <= 1 {
		c.LoadFactor = 1.25
	}
	if c.ReduceShards <= 0 {
		c.ReduceShards = 2
	}
	if c.ReduceShards > len(c.Backends) {
		c.ReduceShards = len(c.Backends)
	}
	if c.ReplayBudget == 0 {
		c.ReplayBudget = 32 << 20
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Proxy is one mfproxy instance.
type Proxy struct {
	cfg    Config
	ln     net.Listener
	router *router
	cache  *resultCache

	// sem bounds concurrently forwarded single-frame requests.
	sem chan struct{}

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	conns    map[*pxConn]struct{}
	draining bool

	connWG sync.WaitGroup
	stats  Stats
}

// New returns an unstarted proxy. Backend clients are created lazily-
// dialing, so it never fails on unreachable backends — only on an
// invalid configuration.
func New(cfg Config) (*Proxy, error) {
	cfg.fillDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("mfproxy: no backends configured")
	}
	if len(cfg.Backends) > maxBackends {
		return nil, fmt.Errorf("mfproxy: %d backends exceeds the maximum %d", len(cfg.Backends), maxBackends)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Proxy{
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInflight),
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      make(map[*pxConn]struct{}),
	}
	backends := make([]*backend, len(cfg.Backends))
	for i, addr := range cfg.Backends {
		opts := append([]client.Option{client.WithLazyDial()}, cfg.ClientOptions...)
		cli, err := client.Dial(addr, opts...)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("mfproxy: backend %s: %w", addr, err)
		}
		backends[i] = &backend{addr: addr, cli: cli}
	}
	p.router = newRouter(backends, cfg.LoadFactor, cfg.FailThreshold, cfg.ProbeAfter, cfg.Seed, &p.stats)
	p.cache = newResultCache(cfg.CacheBytes, &p.stats)
	return p, nil
}

// Stats exposes the proxy's counters (also mirrored into expvar).
func (p *Proxy) Stats() *Stats { return &p.stats }

// Listen binds the configured address. Call before Serve; Addr is
// valid afterwards (useful with ":0").
func (p *Proxy) Listen() error {
	ln, err := net.Listen("tcp", p.cfg.Addr)
	if err != nil {
		return err
	}
	p.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (p *Proxy) Addr() net.Addr {
	if p.ln == nil {
		return nil
	}
	return p.ln.Addr()
}

// Serve accepts downstream connections until Shutdown (or a fatal
// listener error). It returns nil after a clean shutdown.
func (p *Proxy) Serve() error {
	if p.ln == nil {
		if err := p.Listen(); err != nil {
			return err
		}
	}
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			if p.isDraining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := &pxConn{
			p:  p,
			nc: nc,
			br: bufio.NewReaderSize(nc, 1<<16),
			bw: bufio.NewWriterSize(nc, 1<<16),
		}
		p.mu.Lock()
		if p.draining {
			p.mu.Unlock()
			nc.Close()
			continue
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		p.stats.connOpen()
		p.connWG.Add(1)
		go func() {
			defer p.connWG.Done()
			c.serve()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (p *Proxy) ListenAndServe() error {
	if err := p.Listen(); err != nil {
		return err
	}
	return p.Serve()
}

// ServeListener serves on a caller-provided listener (fault-injection
// wrappers, TLS). The proxy takes ownership: Shutdown closes it.
func (p *Proxy) ServeListener(ln net.Listener) error {
	// Fenced by mu because Shutdown reads p.ln from another goroutine;
	// losing the race to a concurrent Shutdown means stop before start.
	p.mu.Lock()
	p.ln = ln
	draining := p.draining
	p.mu.Unlock()
	if draining {
		ln.Close()
		return nil
	}
	return p.Serve()
}

func (p *Proxy) isDraining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Shutdown drains gracefully, mirroring server.Shutdown: stop
// accepting, answer new requests StatusOverloaded, let in-flight
// forwards and open reduction streams finish up to ctx's deadline,
// then close everything including the backend clients.
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return nil
	}
	p.draining = true
	ln := p.ln
	p.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	// Unblock readers parked in Read; draining readers exit on the
	// timeout error instead of treating it as a peer failure.
	p.mu.Lock()
	for c := range p.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	p.baseCancel()
	p.mu.Lock()
	for c := range p.conns {
		c.nc.Close()
	}
	p.mu.Unlock()
	for _, b := range p.router.backends {
		b.cli.Close()
	}
	return err
}

// pxConn is one accepted downstream connection.
type pxConn struct {
	p  *Proxy
	nc net.Conn
	br *bufio.Reader

	rArmed time.Time

	wmu    sync.Mutex
	bw     *bufio.Writer
	wArmed time.Time

	// reds holds this connection's open sharded reduction streams,
	// keyed by downstream request ID; reader-goroutine-only (reduction
	// chunks are forwarded inline, like the server folds them inline).
	// See reduce.go.
	reds map[uint64]*pxReduce
}

// armReadDeadline pushes the read deadline to now+d if the armed one
// has gone stale by more than d/4 (coarse arming, as in serve/server:
// poller timer updates are too expensive per frame).
func (c *pxConn) armReadDeadline(d time.Duration) {
	if now := time.Now(); now.Sub(c.rArmed) > d/4 {
		c.rArmed = now
		c.nc.SetReadDeadline(now.Add(d))
	}
}

func (c *pxConn) armWriteDeadline(d time.Duration) {
	if now := time.Now(); now.Sub(c.wArmed) > d/4 {
		c.wArmed = now
		c.nc.SetWriteDeadline(now.Add(d))
	}
}

func (c *pxConn) serve() {
	defer func() {
		c.p.mu.Lock()
		delete(c.p.conns, c)
		c.p.mu.Unlock()
		c.p.stats.connClose()
		c.nc.Close()
		c.abortAllReductions()
	}()
	for {
		if d := c.p.cfg.IdleTimeout; d > 0 {
			c.armReadDeadline(d)
		}
		req, err := wire.ReadRequest(c.br)
		if err != nil {
			switch {
			case errors.Is(err, wire.ErrChecksum):
				c.p.stats.checksumErr()
			case errors.Is(err, wire.ErrMagic), errors.Is(err, wire.ErrVersion),
				errors.Is(err, wire.ErrFrameType), errors.Is(err, wire.ErrTooLarge),
				errors.Is(err, wire.ErrMalformed):
				c.p.stats.protoErr()
			default:
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() && !c.p.isDraining() {
					c.p.stats.idleTimeout()
				}
			}
			return
		}
		c.p.stats.reqIn()
		if c.p.isDraining() {
			c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOverloaded, RetryAfterMs: 1000})
			return
		}
		if err := c.handle(req); err != nil {
			return
		}
	}
}

// handle dispatches one request. A non-nil return closes the
// connection.
func (c *pxConn) handle(req *wire.Request) error {
	if err := req.Validate(); err != nil {
		c.p.stats.protoErr()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusBadRequest})
	}
	// Loop guard: forwarding increments the hop count, so a request
	// already at the ceiling cannot go upstream — it has visited
	// MaxProxyHops proxy tiers and is looping.
	if req.Hops+1 > wire.MaxProxyHops {
		c.p.stats.loopReject()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusBadRequest})
	}

	// Streamed reductions (a continuation, or a fresh non-final chunk)
	// are forwarded inline on the reader goroutine: chunk order within
	// a stream is the connection's framing order. A single-frame
	// reduction (final, no open stream) is an ordinary request.
	if req.Op.Reduction() {
		if _, open := c.reds[req.ID]; open || req.M&wire.FlagReduceFinal == 0 {
			return c.handleReduce(req)
		}
	}

	// Single-frame request: forward concurrently, bounded by the
	// in-flight budget; beyond it, shed with a retry hint rather than
	// queueing (the client's jittered backoff is the queue).
	select {
	case c.p.sem <- struct{}{}:
	default:
		c.p.stats.overload()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOverloaded, RetryAfterMs: 5})
	}
	go func() {
		defer func() { <-c.p.sem }()
		c.forwardUnary(req)
	}()
	return nil
}

// forwardUnary serves one single-frame request: cache, route, forward
// with failover, respond.
func (c *pxConn) forwardUnary(req *wire.Request) {
	key := cacheKey(req)
	if data, ok := c.p.cache.get(key); ok {
		c.p.stats.cacheHit()
		c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK, Data: data})
		return
	}
	if c.p.cache != nil {
		c.p.stats.cacheMiss()
	}

	ctx := c.p.baseCtx
	cancel := context.CancelFunc(func() {})
	if !req.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, req.Deadline)
	}
	defer cancel()

	h := ringHash(&key)
	fwd := *req
	fwd.Hops = req.Hops + 1
	var tried uint64
	var lastErr error
	for attempt := 0; attempt < len(c.p.router.backends); attempt++ {
		b := c.p.router.acquire(h, tried)
		if b == nil {
			break
		}
		data, err := b.cli.Do(ctx, &fwd)
		c.p.router.release(b, err)
		if err == nil {
			c.p.cache.put(key, data)
			c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK, Data: data})
			return
		}
		lastErr = err
		if !client.IsRetryable(err) || ctx.Err() != nil {
			break
		}
		if i := c.p.router.index(b); i >= 0 {
			tried |= 1 << uint(i)
		}
		c.p.stats.failover()
	}
	status, retryMs := c.statusFor(lastErr)
	c.writeResponse(&wire.Response{ID: req.ID, Status: status, RetryAfterMs: retryMs})
}

// statusFor maps an upstream failure to the downstream status (and
// counts it). A nil error here means no backend was even available.
func (c *pxConn) statusFor(err error) (wire.Status, uint32) {
	switch {
	case err == nil:
		c.p.stats.overload()
		return wire.StatusOverloaded, 50
	case errors.Is(err, client.ErrDeadlineExceeded):
		c.p.stats.deadline()
		return wire.StatusDeadlineExceeded, 0
	case errors.Is(err, client.ErrBadRequest):
		c.p.stats.protoErr()
		return wire.StatusBadRequest, 0
	case errors.Is(err, context.DeadlineExceeded):
		c.p.stats.deadline()
		return wire.StatusDeadlineExceeded, 0
	case client.IsRetryable(err):
		// Transient everywhere we tried: shed; the client's retry may
		// land after a backend recovers.
		c.p.stats.overload()
		return wire.StatusOverloaded, 25
	default:
		return wire.StatusInternal, 0
	}
}

// writeResponse appends resp to the downstream writer and flushes.
// Write errors are swallowed (the reader goroutine observes the broken
// connection and tears down); the error return only signals "stop
// serving this conn".
func (c *pxConn) writeResponse(resp *wire.Response) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if d := c.p.cfg.WriteTimeout; d > 0 {
		c.armWriteDeadline(d)
	}
	if err := wire.WriteResponse(c.bw, resp); err != nil {
		return fmt.Errorf("write response: %w", err)
	}
	c.p.stats.respOut()
	return c.bw.Flush()
}
