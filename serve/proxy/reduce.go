package proxy

import (
	"context"
	"errors"

	"multifloats/internal/exact"
	"multifloats/serve/client"
	"multifloats/serve/wire"
)

// Sharded streaming reductions.
//
// A downstream reduction stream (chunks sharing one ID on one
// connection) is split round-robin across ReduceShards backends, each
// fed through an incremental client.ReduceStream. Because the
// superaccumulator is exact, commutative, and associative
// (internal/exact), ANY partition of the chunks across shards folds to
// the same integer — so on the final chunk the proxy asks every shard
// for its raw serialized accumulator (wire.FlagReduceRaw), merges them
// with Accumulator.Merge, and rounds once. The result is bit-identical
// to a single server folding the whole stream, for every shard count
// and every interleaving.
//
// Failover: every chunk forwarded to a shard is also retained (chunk
// slabs are per-frame allocations, so retention is free) up to
// ReplayBudget bytes. If a shard's backend dies mid-stream, its chunks
// are replayed to a fresh backend and the stream continues — the
// resharded fold is exact for the same reason the sharded one is.
// Past the budget, or with no healthy replacement, the stream fails
// loudly with a retryable status and the downstream client's
// whole-stream retry is the backstop. A completed response is never
// built from a partial fold.

// maxOpenReductions caps concurrent reduction streams per downstream
// connection, as in serve/server.
const maxOpenReductions = 256

// errReduceFailover: a shard died and could not be resharded (budget
// exhausted, or no backend left to replay to). Surfaced downstream as
// StatusOverloaded so the client restarts the whole stream.
var errReduceFailover = errors.New("mfproxy: reduction shard lost and not replayable")

type pxReduce struct {
	op     wire.Op
	width  int
	hops   int // hop count stamped on upstream chunks
	ctx    context.Context
	cancel context.CancelFunc

	shards []*pxShard
	rr     int // round-robin cursor over shards

	buffered   int64 // bytes retained for replay
	budget     int64 // Config.ReplayBudget
	replayable bool
	failed     uint64 // bitmask of backends that already failed this stream
}

type pxShard struct {
	b      *backend
	stream *client.ReduceStream
	chunks []savedChunk // replay log for this shard
}

type savedChunk struct {
	count int
	x, y  []float64
}

// shardHash spreads a stream's shard-open picks over the ring
// independent of operand content (streams are routed by load, not by
// key — their state is wherever their chunks went).
//
//mf:branchfree
//mf:hotpath
func shardHash(id uint64, shard int) uint64 {
	h := id + uint64(shard)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// handleReduce processes one streamed reduction chunk on the reader
// goroutine. A non-nil return closes the downstream connection.
func (c *pxConn) handleReduce(req *wire.Request) error {
	fail := func(status wire.Status, retryMs uint32) error {
		c.dropReduction(req.ID)
		return c.writeResponse(&wire.Response{ID: req.ID, Status: status, RetryAfterMs: retryMs})
	}
	red := c.reds[req.ID]
	switch {
	case red == nil:
		if len(c.reds) >= maxOpenReductions {
			c.p.stats.protoErr()
			return fail(wire.StatusBadRequest, 0)
		}
		ctx := c.p.baseCtx
		cancel := context.CancelFunc(func() {})
		if !req.Deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, req.Deadline)
		}
		nshards := c.p.cfg.ReduceShards
		if nshards < 1 {
			nshards = 1
		}
		red = &pxReduce{
			op: req.Op, width: req.Width, hops: req.Hops + 1,
			ctx: ctx, cancel: cancel,
			shards:     make([]*pxShard, nshards),
			budget:     c.p.cfg.ReplayBudget,
			replayable: true,
		}
		for i := range red.shards {
			red.shards[i] = &pxShard{}
		}
		if c.reds == nil {
			c.reds = make(map[uint64]*pxReduce)
		}
		c.reds[req.ID] = red
	case red.op != req.Op || red.width != req.Width:
		c.p.stats.protoErr()
		return fail(wire.StatusBadRequest, 0)
	}
	if red.ctx.Err() != nil {
		c.p.stats.deadline()
		return fail(wire.StatusDeadlineExceeded, 0)
	}

	s := red.shards[red.rr%len(red.shards)]
	red.rr++

	if req.M&wire.FlagReduceFinal != 0 {
		return c.handleReduceFinal(red, req, s)
	}

	if err := red.sendChunk(c, req.ID, s, req.Count, req.X, req.Y); err != nil {
		status, retryMs := c.reduceStatusFor(err)
		return fail(status, retryMs)
	}
	red.retain(s, req)
	c.p.stats.reduceChunk()
	return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK})
}

// retain appends the chunk to the shard's replay log, dropping all
// logs once the stream exceeds its replay budget.
func (red *pxReduce) retain(s *pxShard, req *wire.Request) {
	if !red.replayable {
		return
	}
	red.buffered += int64(8 * (len(req.X) + len(req.Y)))
	if red.buffered <= red.budget {
		s.chunks = append(s.chunks, savedChunk{count: req.Count, x: req.X, y: req.Y})
		return
	}
	red.replayable = false
	for _, sh := range red.shards {
		sh.chunks = nil
	}
}

// open gives shard s a live upstream stream on a backend not yet
// failed this stream, replaying the shard's retained chunks (a
// non-empty replay is a reshard). Charges the router for the stream's
// lifetime.
func (red *pxReduce) open(c *pxConn, id uint64, s *pxShard) error {
	shardIdx := 0
	for i, sh := range red.shards {
		if sh == s {
			shardIdx = i
		}
	}
	for {
		if err := red.ctx.Err(); err != nil {
			return err
		}
		b := c.p.router.acquire(shardHash(id, shardIdx), red.failed)
		if b == nil {
			return errReduceFailover
		}
		stream, err := b.cli.StartReduce(red.ctx, red.op, red.width, red.hops)
		if err == nil {
			for _, ch := range s.chunks {
				if err = stream.Send(ch.count, ch.x, ch.y); err != nil {
					break
				}
			}
		}
		if err != nil {
			c.p.router.release(b, err)
			if !client.IsRetryable(err) {
				return err
			}
			if i := c.p.router.index(b); i >= 0 {
				red.failed |= 1 << uint(i)
			}
			continue
		}
		if len(s.chunks) > 0 {
			c.p.stats.reshard()
		}
		s.b, s.stream = b, stream
		return nil
	}
}

// sendChunk forwards one chunk to shard s, resharding on a dead
// backend when the replay log allows.
func (red *pxReduce) sendChunk(c *pxConn, id uint64, s *pxShard, count int, x, y []float64) error {
	for {
		if s.stream == nil {
			if err := red.open(c, id, s); err != nil {
				return err
			}
		}
		err := s.stream.Send(count, x, y)
		if err == nil {
			return nil
		}
		// The stream is poisoned (ReduceStream closed its conn); score
		// the backend and reshard if we can.
		c.p.router.release(s.b, err)
		s.stream = nil
		if !client.IsRetryable(err) {
			return err
		}
		if i := c.p.router.index(s.b); i >= 0 {
			red.failed |= 1 << uint(i)
		}
		if !red.replayable {
			return errReduceFailover
		}
	}
}

// finishShard collects shard s's raw accumulator, carrying the final
// payload (count/x/y; zero for shards that just need closing), with
// the same reshard-on-failure behavior as sendChunk. Returns (nil,
// nil) for a shard the stream never touched.
func (red *pxReduce) finishShard(c *pxConn, id uint64, s *pxShard, count int, x, y []float64) ([]float64, error) {
	for {
		if s.stream == nil {
			if len(s.chunks) == 0 && count == 0 {
				return nil, nil // never opened, nothing to contribute
			}
			if err := red.open(c, id, s); err != nil {
				return nil, err
			}
		}
		data, err := s.stream.Finish(count, x, y, true)
		if err == nil {
			c.p.router.release(s.b, nil)
			s.stream = nil
			return data, nil
		}
		c.p.router.release(s.b, err)
		s.stream = nil
		if !client.IsRetryable(err) {
			return nil, err
		}
		if i := c.p.router.index(s.b); i >= 0 {
			red.failed |= 1 << uint(i)
		}
		if !red.replayable {
			return nil, errReduceFailover
		}
	}
}

// handleReduceFinal completes the stream: finish every shard raw,
// merge, round once, answer downstream. s is the shard the final
// chunk's payload is assigned to.
func (c *pxConn) handleReduceFinal(red *pxReduce, req *wire.Request, s *pxShard) error {
	fail := func(status wire.Status, retryMs uint32) error {
		c.dropReduction(req.ID)
		return c.writeResponse(&wire.Response{ID: req.ID, Status: status, RetryAfterMs: retryMs})
	}
	merged := new(exact.Accumulator)
	for _, sh := range red.shards {
		var data []float64
		var err error
		if sh == s {
			data, err = red.finishShard(c, req.ID, sh, req.Count, req.X, req.Y)
		} else {
			data, err = red.finishShard(c, req.ID, sh, 0, nil, nil)
		}
		if err != nil {
			status, retryMs := c.reduceStatusFor(err)
			return fail(status, retryMs)
		}
		if data == nil {
			continue
		}
		dec, derr := exact.DecodeFloats(data)
		if derr != nil {
			// The slab passed the client's CRC and length checks, so a
			// decode failure means a broken backend, not a broken wire.
			return fail(wire.StatusInternal, 0)
		}
		merged.Merge(dec)
	}
	c.p.stats.reduceChunk()
	c.p.stats.reduceDone()
	var out []float64
	if req.M&wire.FlagReduceRaw != 0 {
		out = merged.EncodeFloats() // proxy-behind-proxy: pass raw upward
	} else {
		out = merged.SumExpansion(red.width)
	}
	deadlined := red.ctx.Err() != nil // read before dropReduction cancels the ctx
	c.dropReduction(req.ID)
	if deadlined {
		c.p.stats.deadline()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusDeadlineExceeded})
	}
	return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK, Data: out})
}

// reduceStatusFor maps a shard failure to the downstream status.
func (c *pxConn) reduceStatusFor(err error) (wire.Status, uint32) {
	if errors.Is(err, errReduceFailover) {
		c.p.stats.overload()
		return wire.StatusOverloaded, 25
	}
	return c.statusFor(err)
}

// dropReduction abandons any open stream state for id: upstream shard
// streams are aborted (their conns closed — the backends drop their
// accumulators with them) and router charges returned.
func (c *pxConn) dropReduction(id uint64) {
	red, ok := c.reds[id]
	if !ok {
		return
	}
	delete(c.reds, id)
	for _, sh := range red.shards {
		if sh.stream != nil {
			sh.stream.Abort()
			c.p.router.release(sh.b, nil)
			sh.stream = nil
		}
	}
	red.cancel()
}

// abortAllReductions releases every open stream; called on connection
// teardown.
func (c *pxConn) abortAllReductions() {
	for id := range c.reds {
		c.dropReduction(id)
	}
}
