package proxy

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"multifloats/serve/client"
)

// Routing: consistent hashing with bounded loads over health-scored
// backends.
//
// Every single-frame request hashes to a point on a virtual-node ring
// (the hash is the same canonical operand-bit digest the cache keys on,
// so identical requests land on the same backend and its kernel-local
// caches stay warm). The ring walk skips unhealthy backends and
// enforces the bounded-load rule of consistent-hashing-with-bounded-
// loads: a backend is skipped while its in-flight count exceeds
// LoadFactor × the fleet average, which caps how hot one shard of a
// skewed key distribution can run.
//
// Health is scored per backend: FailThreshold consecutive retryable
// failures eject it for ProbeAfter plus seeded jitter (so a fleet of
// proxies doesn't re-probe in lockstep); after the cooldown the backend
// is half-open — exactly one probe request is let through at a time —
// and the first success reinstates it. Non-retryable outcomes
// (bad-request, deadline) say nothing about backend health and reset
// the consecutive-failure score.

// maxBackends caps the fleet so the ring walk can track visited
// backends in one register-width bitmask on the routing hot path.
const maxBackends = 64

// ringVnodes is the virtual-node multiplicity per backend: enough to
// spread adjacent key ranges across the fleet within a few percent.
const ringVnodes = 128

type backend struct {
	addr string
	cli  *client.Client

	inflight     atomic.Int64
	consecFails  atomic.Int64
	ejectedUntil atomic.Int64 // unix nanos; 0 = never ejected
	probing      atomic.Int32 // 1 while the single half-open probe is out
}

// Backend states returned by state().
const (
	stateUnhealthy = 0 // ejected and cooling down (or probe slot taken)
	stateHealthy   = 1
	stateProbe     = 2 // half-open: this caller won the probe slot and must use it
)

// state classifies the backend for one pick. Winning the probe slot
// commits the caller to routing to this backend (release clears the
// slot), so a stateProbe return must be taken.
//
//mf:hotpath
func (b *backend) state(now int64) int32 {
	eu := b.ejectedUntil.Load()
	if eu == 0 {
		return stateHealthy
	}
	if now < eu {
		return stateUnhealthy
	}
	if b.probing.CompareAndSwap(0, 1) {
		return stateProbe
	}
	return stateUnhealthy
}

type ringPoint struct {
	hash uint64
	idx  int32
}

type router struct {
	backends []*backend
	points   []ringPoint
	totalIn  atomic.Int64 // in-flight across the fleet, for the load bound
	loadNum  int64        // LoadFactor as a rational loadNum/loadDen
	loadDen  int64

	failThreshold int64
	probeAfter    time.Duration

	jmu  sync.Mutex
	jrng *rand.Rand

	stats *Stats
}

func newRouter(backends []*backend, loadFactor float64, failThreshold int, probeAfter time.Duration, seed int64, stats *Stats) *router {
	r := &router{
		backends:      backends,
		loadNum:       int64(loadFactor * 1024),
		loadDen:       1024,
		failThreshold: int64(failThreshold),
		probeAfter:    probeAfter,
		jrng:          rand.New(rand.NewSource(seed)),
		stats:         stats,
	}
	r.points = make([]ringPoint, 0, len(backends)*ringVnodes)
	for i, b := range backends {
		for v := 0; v < ringVnodes; v++ {
			var buf []byte
			buf = append(buf, b.addr...)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			h := sha256.Sum256(buf)
			r.points = append(r.points, ringPoint{
				hash: binary.LittleEndian.Uint64(h[:8]),
				idx:  int32(i),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// pick walks the ring from h and returns the index of the chosen
// backend, or -1 if every backend is ejected. tried is a bitmask of
// backends to skip (failover re-picks). The first healthy,
// under-the-load-bound backend clockwise wins; a probe slot won along
// the way is always taken; if every healthy backend is over the bound,
// the least-loaded healthy one is used (shedding is the caller's call,
// not the router's).
//
//mf:hotpath
func (r *router) pick(h uint64, now int64, tried uint64) int32 {
	pts := r.points
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	total := r.totalIn.Load()
	n := int64(len(r.backends))
	visited := tried
	fallback := int32(-1)
	var fallbackLoad int64
	for k := 0; k < len(pts); k++ {
		p := pts[(lo+k)%len(pts)]
		bit := uint64(1) << uint(p.idx)
		if visited&bit != 0 {
			continue
		}
		visited |= bit
		b := r.backends[p.idx]
		st := b.state(now)
		if st == stateUnhealthy {
			continue
		}
		if st == stateProbe {
			return p.idx
		}
		load := b.inflight.Load()
		// Bounded load: admit while (load+1) ≤ factor × (total+n)/n.
		if (load+1)*r.loadDen*n <= r.loadNum*(total+n) {
			return p.idx
		}
		if fallback < 0 || load < fallbackLoad {
			fallback, fallbackLoad = p.idx, load
		}
	}
	return fallback
}

// acquire picks a backend for key hash h, excluding the tried set, and
// charges it one in-flight request. Returns nil when no backend is
// available (all ejected or excluded).
func (r *router) acquire(h uint64, tried uint64) *backend {
	i := r.pick(h, time.Now().UnixNano(), tried)
	if i < 0 {
		return nil
	}
	b := r.backends[i]
	b.inflight.Add(1)
	r.totalIn.Add(1)
	return b
}

// release returns the in-flight charge and scores the outcome. Only
// retryable failures (client.IsRetryable) count against health: they
// mean the backend never definitively served the request. Anything
// else — success, bad-request, deadline — proves the backend alive.
func (r *router) release(b *backend, err error) {
	b.inflight.Add(-1)
	r.totalIn.Add(-1)
	if err != nil && client.IsRetryable(err) {
		if n := b.consecFails.Add(1); n >= r.failThreshold {
			r.jmu.Lock()
			jitter := time.Duration(r.jrng.Int63n(int64(r.probeAfter)/2 + 1))
			r.jmu.Unlock()
			b.ejectedUntil.Store(time.Now().Add(r.probeAfter + jitter).UnixNano())
			r.stats.ejection()
		}
		b.probing.Store(0)
		return
	}
	// Success or a definitive answer: clear the score, and if this was
	// an ejected backend's probe, reinstate it.
	b.consecFails.Store(0)
	if b.ejectedUntil.Swap(0) != 0 {
		r.stats.reinstate()
	}
	b.probing.Store(0)
}

// index returns the position of b in the backend list (for bitmasks).
func (r *router) index(b *backend) int {
	for i, x := range r.backends {
		if x == b {
			return i
		}
	}
	return -1
}
