package proxy

import (
	"context"
	"testing"
	"time"

	"multifloats/mf"
	"multifloats/serve/client"
)

func testBackends(n int) []*backend {
	bs := make([]*backend, n)
	for i := range bs {
		bs[i] = &backend{addr: "10.0.0." + string(rune('1'+i)) + ":9000"}
	}
	return bs
}

// retryableErr manufactures a genuine client-typed transient error by
// failing a real call against an unroutable address (no listener on
// 127.0.0.1:1); release() scores health through client.IsRetryable, so
// the tests must use the real type, not a stand-in.
func retryableErr(t *testing.T) error {
	t.Helper()
	cli, err := client.Dial("127.0.0.1:1",
		client.WithLazyDial(), client.WithMaxRetries(0),
		client.WithDialTimeout(200*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	_, err = cli.Add2(context.Background(), mf.New2(1.0), mf.New2(2.0))
	if err == nil {
		t.Fatal("call against a dead address succeeded")
	}
	if !client.IsRetryable(err) {
		t.Fatalf("dead-address error not retryable: %v", err)
	}
	return err
}

func TestRingSpreadAndDeterminism(t *testing.T) {
	var st Stats
	r := newRouter(testBackends(4), 1.25, 3, time.Second, 7, &st)
	now := time.Now().UnixNano()
	counts := make([]int, 4)
	for h := uint64(0); h < 8000; h++ {
		i := r.pick(h*0x9e3779b97f4a7c15, now, 0)
		if i < 0 {
			t.Fatal("pick returned -1 with all backends healthy")
		}
		counts[i]++
		if again := r.pick(h*0x9e3779b97f4a7c15, now, 0); again != i {
			t.Fatalf("pick not deterministic for a fixed hash: %d then %d", i, again)
		}
	}
	for i, c := range counts {
		if c < 8000/4/3 {
			t.Errorf("backend %d got %d/8000 picks; ring badly skewed: %v", i, c, counts)
		}
	}
}

func TestPickSkipsTriedAndOverloaded(t *testing.T) {
	var st Stats
	r := newRouter(testBackends(3), 1.25, 3, time.Second, 7, &st)
	now := time.Now().UnixNano()
	h := uint64(0xdecafbad)
	first := r.pick(h, now, 0)
	second := r.pick(h, now, uint64(1)<<uint(first))
	if second == first || second < 0 {
		t.Fatalf("tried mask not honored: first=%d second=%d", first, second)
	}

	// Pile in-flight onto the primary; the bounded-load rule must divert.
	r.backends[first].inflight.Store(100)
	r.totalIn.Store(100)
	diverted := r.pick(h, now, 0)
	if diverted == first {
		t.Fatalf("bounded load did not divert from the overloaded primary")
	}
	// With EVERY backend over the bound the least-loaded one is still
	// returned (the proxy sheds by semaphore, not by refusing to route).
	// A fleet-total below the per-backend loads puts them all over.
	for i, b := range r.backends {
		b.inflight.Store(int64(100 + i))
	}
	r.totalIn.Store(30)
	if got := r.pick(h, now, 0); got != 0 {
		t.Fatalf("fallback should be the least-loaded backend 0, got %d", got)
	}
}

func TestEjectProbeReinstate(t *testing.T) {
	terr := retryableErr(t)
	var st Stats
	const probeAfter = 20 * time.Millisecond
	r := newRouter(testBackends(2), 1.25, 2, probeAfter, 7, &st)
	b := r.backends[0]

	// One retryable failure: scored but not ejected.
	r.acquire(0, 0)
	r.release(b, terr)
	if b.ejectedUntil.Load() != 0 {
		t.Fatal("ejected before FailThreshold")
	}
	// Second consecutive failure hits the threshold.
	r.acquire(0, 0)
	r.release(b, terr)
	if b.ejectedUntil.Load() == 0 {
		t.Fatal("not ejected at FailThreshold")
	}
	if st.Ejections.Load() != 1 {
		t.Fatalf("Ejections = %d, want 1", st.Ejections.Load())
	}
	now := time.Now().UnixNano()
	if s := b.state(now); s != stateUnhealthy {
		t.Fatalf("state during cooldown = %d, want unhealthy", s)
	}

	// After cooldown (+ max 50%% jitter) the FIRST caller wins the probe
	// slot; concurrent callers see unhealthy until it resolves.
	time.Sleep(2 * probeAfter)
	now = time.Now().UnixNano()
	if s := b.state(now); s != stateProbe {
		t.Fatalf("state after cooldown = %d, want probe", s)
	}
	if s := b.state(now); s != stateUnhealthy {
		t.Fatalf("second concurrent probe = %d, want unhealthy (slot taken)", s)
	}

	// Probe succeeds: reinstated, score cleared, slot released.
	b.inflight.Add(1)
	r.totalIn.Add(1)
	r.release(b, nil)
	if b.ejectedUntil.Load() != 0 || b.consecFails.Load() != 0 {
		t.Fatal("probe success did not reinstate")
	}
	if st.Reinstates.Load() != 1 {
		t.Fatalf("Reinstates = %d, want 1", st.Reinstates.Load())
	}
	if s := b.state(time.Now().UnixNano()); s != stateHealthy {
		t.Fatalf("state after reinstatement = %d, want healthy", s)
	}

	// Non-retryable outcomes never score: a bad request proves liveness.
	b.consecFails.Store(1)
	r.acquire(0, 0)
	r.release(b, context.Canceled)
	if b.consecFails.Load() != 0 {
		t.Fatal("definitive outcome did not clear the failure score")
	}
}

func TestPickAllEjected(t *testing.T) {
	var st Stats
	r := newRouter(testBackends(2), 1.25, 1, time.Hour, 7, &st)
	far := time.Now().Add(time.Hour).UnixNano()
	for _, b := range r.backends {
		b.ejectedUntil.Store(far)
	}
	if got := r.pick(1234, time.Now().UnixNano(), 0); got != -1 {
		t.Fatalf("pick with every backend ejected = %d, want -1", got)
	}
	if b := r.acquire(1234, 0); b != nil {
		t.Fatal("acquire with every backend ejected returned a backend")
	}
}
