package server_test

// End-to-end loopback coverage for the transcendental op family
// (wire.OpExp..OpHypot): every op at every width, driven concurrently so
// the lane scheduler actually coalesces across requests, with each
// remote result compared bit-for-bit against the corresponding local mf
// call. The math kernels are scalar and elementwise, so parity must hold
// at any worker count and any batching seam — including the §4.4
// special-value collapse states and the Payne–Hanek huge-argument trig
// path.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"multifloats/internal/diffuzz"
	"multifloats/mf"
	"multifloats/serve/client"
	"multifloats/serve/server"
	"multifloats/serve/wire"
)

// mathOps walks the contiguous transcendental op block.
func mathOps() []wire.Op {
	var ops []wire.Op
	for op := wire.OpExp; op <= wire.OpHypot; op++ {
		ops = append(ops, op)
	}
	return ops
}

// transcendental mirrors the mf elementary-function surface so the test
// can compute the local reference generically (an independent dispatch
// from the server's own, which doubles as a drift guard).
type transcendental[E any] interface {
	Exp() E
	Expm1() E
	Exp2() E
	Log() E
	Log1p() E
	Log2() E
	Log10() E
	Sin() E
	Cos() E
	Tan() E
	Asin() E
	Acos() E
	Atan() E
	Sinh() E
	Cosh() E
	Tanh() E
	Cbrt() E
	Pow(E) E
	Hypot(E) E
}

func localMath[E transcendental[E]](op wire.Op, x, y E) E {
	switch op {
	case wire.OpExp:
		return x.Exp()
	case wire.OpExpm1:
		return x.Expm1()
	case wire.OpExp2:
		return x.Exp2()
	case wire.OpLog:
		return x.Log()
	case wire.OpLog1p:
		return x.Log1p()
	case wire.OpLog2:
		return x.Log2()
	case wire.OpLog10:
		return x.Log10()
	case wire.OpSin:
		return x.Sin()
	case wire.OpCos:
		return x.Cos()
	case wire.OpTan:
		return x.Tan()
	case wire.OpAsin:
		return x.Asin()
	case wire.OpAcos:
		return x.Acos()
	case wire.OpAtan:
		return x.Atan()
	case wire.OpSinh:
		return x.Sinh()
	case wire.OpCosh:
		return x.Cosh()
	case wire.OpTanh:
		return x.Tanh()
	case wire.OpCbrt:
		return x.Cbrt()
	case wire.OpPow:
		return x.Pow(y)
	case wire.OpHypot:
		return x.Hypot(y)
	}
	panic("localMath: not a math op")
}

func localMath2(op wire.Op, x, y mf.Float64x2) mf.Float64x2 {
	if op == wire.OpAtan2 {
		return mf.Atan2F2(x, y)
	}
	return localMath(op, x, y)
}

func localMath3(op wire.Op, x, y mf.Float64x3) mf.Float64x3 {
	if op == wire.OpAtan2 {
		return mf.Atan2F3(x, y)
	}
	return localMath(op, x, y)
}

func localMath4(op wire.Op, x, y mf.Float64x4) mf.Float64x4 {
	if op == wire.OpAtan2 {
		return mf.Atan2F4(x, y)
	}
	return localMath(op, x, y)
}

// mathLead picks an adversarial-but-interesting lead exponent band per
// op family: wide bands drive exp/log/pow through their overflow and
// NaN screens (parity must hold there too — both sides collapse), while
// trig gets huge leads to exercise Payne–Hanek over the wire.
func mathLead(op wire.Op, it int) int {
	switch op {
	case wire.OpExp, wire.OpExpm1, wire.OpExp2, wire.OpSinh, wire.OpCosh:
		return 9
	case wire.OpSin, wire.OpCos, wire.OpTan:
		if it%2 == 0 {
			return 600 // Payne–Hanek range
		}
		return 8
	case wire.OpPow:
		return 3
	default:
		return 200
	}
}

// TestE2EMathBitExactParity drives every transcendental op at every
// width from concurrent goroutines (so lanes coalesce) and demands
// bit-identical results to in-process mf calls. The server runs with
// full worker parallelism: elementwise math must not care how slabs
// split.
func TestE2EMathBitExactParity(t *testing.T) {
	_, c := startE2E(t, server.Config{
		BatchWindow: 100 * time.Microsecond,
		MaxBatch:    64,
	})
	ctx := context.Background()

	const goroutines = 6
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := diffuzz.NewGen(int64(7000 + g))
			for it := 0; it < iters; it++ {
				for _, op := range mathOps() {
					if err := mathParityRound(ctx, c, gen, op, it); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func mathParityRound(ctx context.Context, c *client.Client, gen *diffuzz.Gen, op wire.Op, it int) error {
	lead := mathLead(op, it)

	var x2, y2 mf.Float64x2
	copy(x2[:], gen.Expansion(2, lead))
	copy(y2[:], gen.Expansion(2, lead))
	got2, err := c.Math2(ctx, op, x2, y2)
	if err != nil {
		return fmt.Errorf("Math2(%s): %w", op, err)
	}
	if want := localMath2(op, x2, y2); !eq2(got2, want) {
		return fmt.Errorf("Math2(%s) parity: x=%v y=%v got=%v want=%v", op, x2, y2, got2, want)
	}

	var x3, y3 mf.Float64x3
	copy(x3[:], gen.Expansion(3, lead))
	copy(y3[:], gen.Expansion(3, lead))
	got3, err := c.Math3(ctx, op, x3, y3)
	if err != nil {
		return fmt.Errorf("Math3(%s): %w", op, err)
	}
	if want := localMath3(op, x3, y3); !eq3(got3, want) {
		return fmt.Errorf("Math3(%s) parity: x=%v y=%v got=%v want=%v", op, x3, y3, got3, want)
	}

	var x4, y4 mf.Float64x4
	copy(x4[:], gen.Expansion(4, lead))
	copy(y4[:], gen.Expansion(4, lead))
	got4, err := c.Math4(ctx, op, x4, y4)
	if err != nil {
		return fmt.Errorf("Math4(%s): %w", op, err)
	}
	if want := localMath4(op, x4, y4); !eq4(got4, want) {
		return fmt.Errorf("Math4(%s) parity: x=%v y=%v got=%v want=%v", op, x4, y4, got4, want)
	}
	return nil
}

// TestE2EMathSliceParity sends whole vectors through one request per op
// and checks elementwise bit parity, covering the slab gather/scatter
// seams for both unary and binary math ops.
func TestE2EMathSliceParity(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	ctx := context.Background()
	gen := diffuzz.NewGen(0x3a7)
	const n = 97 // odd length: exercises uneven Parallel splits
	for _, op := range mathOps() {
		xs := make([]mf.Float64x3, n)
		ys := make([]mf.Float64x3, n)
		for i := range xs {
			copy(xs[i][:], gen.Expansion(3, mathLead(op, i)))
			copy(ys[i][:], gen.Expansion(3, mathLead(op, i)))
		}
		got, err := c.MathSlice3(ctx, op, xs, ys)
		if err != nil {
			t.Fatalf("MathSlice3(%s): %v", op, err)
		}
		for i := range xs {
			if want := localMath3(op, xs[i], ys[i]); !eq3(got[i], want) {
				t.Fatalf("MathSlice3(%s)[%d]: got %v want %v", op, i, got[i], want)
			}
		}
	}
}

// TestE2EMathSpecialValues: the §4.4 collapse states survive the wire
// for the math family — a remote NaN/Inf/±0 operand produces exactly
// the local collapse result, bitwise.
func TestE2EMathSpecialValues(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	ctx := context.Background()
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1, -1}
	for _, op := range mathOps() {
		for _, sx := range specials {
			for _, sy := range specials {
				x := mf.Float64x2{sx, 0}
				y := mf.Float64x2{sy, 0}
				got, err := c.Math2(ctx, op, x, y)
				if err != nil {
					t.Fatalf("Math2(%s, %v, %v): %v", op, sx, sy, err)
				}
				want := localMath2(op, x, y)
				if !eq2(got, want) {
					t.Fatalf("Math2(%s, %v, %v): got %v want %v", op, sx, sy, got, want)
				}
			}
		}
	}
}

// TestE2EMathHugeTrigArgs pins the Payne–Hanek reduction through the
// wire: sin/cos/tan of the classic worst-case double and of arguments
// up to |x| ≈ 1e300 must be bit-identical to local evaluation.
func TestE2EMathHugeTrigArgs(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	ctx := context.Background()
	args := []float64{
		math.Ldexp(6381956970095103, 797), // closest double to a multiple of π/2
		1e300, -1e300, 1e22, 5e250,
	}
	for _, op := range []wire.Op{wire.OpSin, wire.OpCos, wire.OpTan} {
		for _, a := range args {
			x := mf.Float64x4{a, 0, 0, 0}
			got, err := c.Math4(ctx, op, x, mf.Float64x4{})
			if err != nil {
				t.Fatalf("Math4(%s, %g): %v", op, a, err)
			}
			want := localMath4(op, x, mf.Float64x4{})
			if !eq4(got, want) {
				t.Fatalf("Math4(%s, %g): got %v want %v", op, a, got, want)
			}
		}
	}
}

// TestE2EMathRejectsNonMathOp: the client-side gate refuses to send a
// non-transcendental op through the Math methods.
func TestE2EMathRejectsNonMathOp(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	if _, err := c.Math2(context.Background(), wire.OpAdd, mf.New2(1.0), mf.New2(2.0)); err == nil {
		t.Fatal("Math2(OpAdd) succeeded; want ErrBadRequest")
	}
}
