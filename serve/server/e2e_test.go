package server_test

// End-to-end loopback test: a real server on 127.0.0.1:0, the real
// connection-pooled client, mixed scalar + BLAS traffic from N
// concurrent goroutines, and a bit-for-bit comparison of every remote
// result against the corresponding direct in-process mf/blas call.
// Adversarial operands come from internal/diffuzz. The server runs with
// Workers=1 so the BLAS reduction order matches the sequential local
// kernels exactly (determinism is per (shape, workers); the scalar ops
// are elementwise and bit-exact at any worker count — a second pass
// below pins that with the default worker configuration).
//
// `make race` runs this file under the race detector.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"multifloats/internal/blas"
	"multifloats/internal/diffuzz"
	"multifloats/mf"
	"multifloats/serve/client"
	"multifloats/serve/server"
)

func startE2E(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := server.New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, c
}

func eq2(a, b mf.Float64x2) bool {
	return math.Float64bits(a[0]) == math.Float64bits(b[0]) &&
		math.Float64bits(a[1]) == math.Float64bits(b[1])
}
func eq3(a, b mf.Float64x3) bool {
	for k := 0; k < 3; k++ {
		if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
			return false
		}
	}
	return true
}
func eq4(a, b mf.Float64x4) bool {
	for k := 0; k < 4; k++ {
		if math.Float64bits(a[k]) != math.Float64bits(b[k]) {
			return false
		}
	}
	return true
}

// TestE2EBitExactParity drives every op at every width concurrently and
// demands bit-identical results to the in-process calls.
func TestE2EBitExactParity(t *testing.T) {
	_, c := startE2E(t, server.Config{
		BatchWindow: 100 * time.Microsecond,
		MaxBatch:    64,
		Workers:     1, // sequential-equivalent kernel order for BLAS parity
	})
	ctx := context.Background()

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := diffuzz.NewGen(int64(1000 + g))
			for it := 0; it < iters; it++ {
				if err := oneParityRound(ctx, c, gen, it); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func e2eErr(what string, err error) error {
	return errors.Join(errors.New(what), err)
}

// oneParityRound exercises one iteration of mixed traffic at all widths.
func oneParityRound(ctx context.Context, c *client.Client, gen *diffuzz.Gen, it int) error {
	// --- scalar ops, width 2/3/4, adversarial operands ---
	var x2, y2 mf.Float64x2
	copy(x2[:], gen.Expansion(2, 200))
	copy(y2[:], gen.Expansion(2, 200))
	if got, err := c.Add2(ctx, x2, y2); err != nil || !eq2(got, x2.Add(y2)) {
		return e2eErr("Add2 parity", err)
	}
	if got, err := c.Mul2(ctx, x2, y2); err != nil || !eq2(got, x2.Mul(y2)) {
		return e2eErr("Mul2 parity", err)
	}

	var x3, y3 mf.Float64x3
	copy(x3[:], gen.Expansion(3, 120))
	copy(y3[:], gen.NonZero(3, 120))
	if got, err := c.Sub3(ctx, x3, y3); err != nil || !eq3(got, x3.Sub(y3)) {
		return e2eErr("Sub3 parity", err)
	}
	if got, err := c.Div3(ctx, x3, y3); err != nil || !eq3(got, x3.Div(y3)) {
		return e2eErr("Div3 parity", err)
	}

	var x4 mf.Float64x4
	copy(x4[:], gen.Positive(4, 100))
	if got, err := c.Sqrt4(ctx, x4); err != nil || !eq4(got, x4.Sqrt()) {
		return e2eErr("Sqrt4 parity", err)
	}

	// --- elementwise slices ---
	n := 16 + it%17
	xs := make([]mf.Float64x2, n)
	ys := make([]mf.Float64x2, n)
	for i := range xs {
		copy(xs[i][:], gen.BlasElement(2))
		copy(ys[i][:], gen.BlasElement(2))
	}
	gotS, err := c.MulSlice2(ctx, xs, ys)
	if err != nil {
		return e2eErr("MulSlice2", err)
	}
	for i := range xs {
		if !eq2(gotS[i], xs[i].Mul(ys[i])) {
			return errors.New("MulSlice2 parity: element mismatch")
		}
	}

	// --- BLAS: dot / axpy / gemv / gemm at rotating widths ---
	switch it % 3 {
	case 0:
		vx := make([]mf.Float64x2, n)
		vy := make([]mf.Float64x2, n)
		for i := range vx {
			copy(vx[i][:], gen.BlasElement(2))
			copy(vy[i][:], gen.BlasElement(2))
		}
		got, err := c.Dot2(ctx, vx, vy)
		if err != nil || !eq2(got, blas.DotF2Parallel(vx, vy, 1)) {
			return e2eErr("Dot2 parity", err)
		}
		var alpha mf.Float64x2
		copy(alpha[:], gen.BlasElement(2))
		want := append([]mf.Float64x2(nil), vy...)
		blas.AxpyF2Parallel(alpha, vx, want, 1)
		gotA, err := c.Axpy2(ctx, alpha, vx, vy)
		if err != nil {
			return e2eErr("Axpy2", err)
		}
		for i := range want {
			if !eq2(gotA[i], want[i]) {
				return errors.New("Axpy2 parity: element mismatch")
			}
		}
	case 1:
		rows, cols := 8+it%5, 8+it%7
		a := make([]mf.Float64x3, rows*cols)
		vx := make([]mf.Float64x3, cols)
		for i := range a {
			copy(a[i][:], gen.BlasElement(3))
		}
		for i := range vx {
			copy(vx[i][:], gen.BlasElement(3))
		}
		got, err := c.Gemv3(ctx, a, rows, cols, vx)
		if err != nil {
			return e2eErr("Gemv3", err)
		}
		want := make([]mf.Float64x3, rows)
		blas.GemvTiledF3Parallel(a, rows, cols, vx, want, 1)
		for i := range want {
			if !eq3(got[i], want[i]) {
				return errors.New("Gemv3 parity: element mismatch")
			}
		}
	default:
		dim := 6 + it%4
		a := make([]mf.Float64x4, dim*dim)
		b := make([]mf.Float64x4, dim*dim)
		for i := range a {
			copy(a[i][:], gen.BlasElement(4))
			copy(b[i][:], gen.BlasElement(4))
		}
		got, err := c.Gemm4(ctx, a, b, dim)
		if err != nil {
			return e2eErr("Gemm4", err)
		}
		want := make([]mf.Float64x4, dim*dim)
		blas.GemmBlockedF4Parallel(a, b, want, dim, 1)
		for i := range want {
			if !eq4(got[i], want[i]) {
				return errors.New("Gemm4 parity: element mismatch")
			}
		}
	}
	return nil
}

// TestE2EScalarParityParallelWorkers re-runs the scalar paths against a
// server with full worker parallelism: elementwise slabs must be
// bit-exact regardless of how the batch was split across the pool.
func TestE2EScalarParityParallelWorkers(t *testing.T) {
	_, c := startE2E(t, server.Config{BatchWindow: 150 * time.Microsecond, MaxBatch: 128})
	ctx := context.Background()
	gen := diffuzz.NewGen(0xe2e)
	const n = 512
	xs := make([]mf.Float64x4, n)
	ys := make([]mf.Float64x4, n)
	for i := range xs {
		copy(xs[i][:], gen.Expansion(4, 150))
		copy(ys[i][:], gen.Expansion(4, 150))
	}
	got, err := c.AddSlice4(ctx, xs, ys)
	if err != nil {
		t.Fatalf("AddSlice4: %v", err)
	}
	for i := range xs {
		if !eq4(got[i], xs[i].Add(ys[i])) {
			t.Fatalf("AddSlice4[%d]: not bit-exact", i)
		}
	}
}

// TestE2EDeadlineFailFast: a request whose deadline lands inside a long
// batch window is answered StatusDeadlineExceeded at (not after) its
// deadline, and well before the window would have flushed.
func TestE2EDeadlineFailFast(t *testing.T) {
	s, c := startE2E(t, server.Config{BatchWindow: 2 * time.Second, MaxBatch: 1 << 20})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Add2(ctx, mf.New2(1.0), mf.New2(2.0))
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrDeadlineExceeded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline answer took %v; server waited out the batch window instead of failing fast", elapsed)
	}
	if got := s.Stats().DeadlineMisses.Load(); got != 1 {
		t.Fatalf("deadline_misses = %d, want 1", got)
	}
}

// TestE2EExpiredBlasRequest: BLAS requests also honor deadlines (checked
// before execution on the conn goroutine).
func TestE2EExpiredBlasRequest(t *testing.T) {
	s, c := startE2E(t, server.Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	x := make([]mf.Float64x2, 32)
	_, err := c.Dot2(ctx, x, x)
	if !errors.Is(err, client.ErrDeadlineExceeded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The miss may be counted server-side (if the frame made it out) or
	// rejected client-side; either way no result was produced.
	_ = s
}

// TestE2ESpecialValues: the §4.4 collapse states survive the wire.
func TestE2ESpecialValues(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	ctx := context.Background()
	nan2 := mf.Float64x2{math.NaN(), 0}
	got, err := c.Add2(ctx, nan2, mf.New2(1.0))
	if err != nil {
		t.Fatalf("Add2(NaN): %v", err)
	}
	if !got.IsNaN() {
		t.Fatalf("NaN did not propagate: %v", got)
	}
	inf3 := mf.Float64x3{math.Inf(1), 0, 0}
	got3, err := c.Mul3(ctx, inf3, mf.New3(2.0))
	if err != nil {
		t.Fatalf("Mul3(Inf): %v", err)
	}
	want3 := inf3.Mul(mf.New3(2.0))
	if !eq3(got3, want3) {
		t.Fatalf("Inf collapse mismatch: got %v want %v", got3, want3)
	}
	zneg := mf.Float64x2{math.Copysign(0, -1), 0}
	gotz, err := c.Sqrt2(ctx, zneg)
	if err != nil {
		t.Fatalf("Sqrt2(-0): %v", err)
	}
	wantz := zneg.Sqrt()
	if math.Float64bits(gotz[0]) != math.Float64bits(wantz[0]) {
		t.Fatalf("Sqrt2(-0): got %x want %x", math.Float64bits(gotz[0]), math.Float64bits(wantz[0]))
	}
}

// Guard against silent wire/op drift: every op the client can issue is
// accepted by a default server.
func TestE2EAllOpsAccepted(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	ctx := context.Background()
	x2, y2 := mf.New2(9.0), mf.New2(4.0)
	for name, call := range map[string]func() error{
		"add": func() error { _, err := c.Add2(ctx, x2, y2); return err },
		"sub": func() error { _, err := c.Sub2(ctx, x2, y2); return err },
		"mul": func() error { _, err := c.Mul2(ctx, x2, y2); return err },
		"div": func() error { _, err := c.Div2(ctx, x2, y2); return err },
		"sqrt": func() error {
			got, err := c.Sqrt2(ctx, x2)
			if err == nil && got.Float() != 3 {
				return errors.New("sqrt(9) != 3")
			}
			return err
		},
		"axpy": func() error {
			_, err := c.Axpy2(ctx, x2, []mf.Float64x2{y2}, []mf.Float64x2{x2})
			return err
		},
		"dot": func() error { _, err := c.Dot2(ctx, []mf.Float64x2{x2}, []mf.Float64x2{y2}); return err },
		"gemv": func() error {
			_, err := c.Gemv2(ctx, []mf.Float64x2{x2, y2, y2, x2}, 2, 2, []mf.Float64x2{x2, y2})
			return err
		},
		"gemm": func() error {
			a := []mf.Float64x2{x2, y2, y2, x2}
			_, err := c.Gemm2(ctx, a, a, 2)
			return err
		},
	} {
		if err := call(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
