package server

import (
	"fmt"

	"multifloats/internal/blas"
	"multifloats/internal/core"
	"multifloats/serve/wire"
)

// Slab executors. Scalar batches arrive as flat component slabs (the
// concatenation of every coalesced request's operands); the elementwise
// kernels below run the same branch-free internal/core primitives the
// public mf API uses, so a remote result is bit-identical to the
// corresponding in-process call no matter how requests were batched.
// The slab is split across the internal/blas worker pool.

// execScalarSlab computes out[i] = op(x[i], y[i]) elementwise over
// width-w expansions stored in flat slabs. len(out) == len(x); y is
// ignored for unary ops.
func execScalarSlab(op wire.Op, width int, x, y, out []float64, workers int) {
	count := len(x) / width
	var body func(lo, hi int)
	switch width {
	case 2:
		switch op {
		case wire.OpAdd:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[2*i], out[2*i+1] = core.Add2(x[2*i], x[2*i+1], y[2*i], y[2*i+1])
				}
			}
		case wire.OpSub:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[2*i], out[2*i+1] = core.Sub2(x[2*i], x[2*i+1], y[2*i], y[2*i+1])
				}
			}
		case wire.OpMul:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[2*i], out[2*i+1] = core.Mul2(x[2*i], x[2*i+1], y[2*i], y[2*i+1])
				}
			}
		case wire.OpDiv:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[2*i], out[2*i+1] = core.Div2(x[2*i], x[2*i+1], y[2*i], y[2*i+1])
				}
			}
		case wire.OpSqrt:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[2*i], out[2*i+1] = core.Sqrt2(x[2*i], x[2*i+1])
				}
			}
		}
	case 3:
		switch op {
		case wire.OpAdd:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[3*i], out[3*i+1], out[3*i+2] = core.Add3(
						x[3*i], x[3*i+1], x[3*i+2], y[3*i], y[3*i+1], y[3*i+2])
				}
			}
		case wire.OpSub:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[3*i], out[3*i+1], out[3*i+2] = core.Sub3(
						x[3*i], x[3*i+1], x[3*i+2], y[3*i], y[3*i+1], y[3*i+2])
				}
			}
		case wire.OpMul:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[3*i], out[3*i+1], out[3*i+2] = core.Mul3(
						x[3*i], x[3*i+1], x[3*i+2], y[3*i], y[3*i+1], y[3*i+2])
				}
			}
		case wire.OpDiv:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[3*i], out[3*i+1], out[3*i+2] = core.Div3(
						x[3*i], x[3*i+1], x[3*i+2], y[3*i], y[3*i+1], y[3*i+2])
				}
			}
		case wire.OpSqrt:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[3*i], out[3*i+1], out[3*i+2] = core.Sqrt3(x[3*i], x[3*i+1], x[3*i+2])
				}
			}
		}
	case 4:
		switch op {
		case wire.OpAdd:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = core.Add4(
						x[4*i], x[4*i+1], x[4*i+2], x[4*i+3],
						y[4*i], y[4*i+1], y[4*i+2], y[4*i+3])
				}
			}
		case wire.OpSub:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = core.Sub4(
						x[4*i], x[4*i+1], x[4*i+2], x[4*i+3],
						y[4*i], y[4*i+1], y[4*i+2], y[4*i+3])
				}
			}
		case wire.OpMul:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = core.Mul4(
						x[4*i], x[4*i+1], x[4*i+2], x[4*i+3],
						y[4*i], y[4*i+1], y[4*i+2], y[4*i+3])
				}
			}
		case wire.OpDiv:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = core.Div4(
						x[4*i], x[4*i+1], x[4*i+2], x[4*i+3],
						y[4*i], y[4*i+1], y[4*i+2], y[4*i+3])
				}
			}
		case wire.OpSqrt:
			body = func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = core.Sqrt4(
						x[4*i], x[4*i+1], x[4*i+2], x[4*i+3])
				}
			}
		}
	}
	if body == nil {
		panic(fmt.Sprintf("execScalarSlab: unreachable op/width %v/%d", op, width))
	}
	blas.Parallel(count, workers, body)
}

// execBlas runs a validated BLAS request on the specialized kernels —
// the same tiled/blocked paths the benchmarks measure — and returns the
// result slab. Determinism: each kernel's operation order is a pure
// function of (shape, workers), so a client comparing against a local
// call with the same worker count sees bit-identical results.
func execBlas(req *wire.Request, workers int) []float64 {
	switch req.Op {
	case wire.OpDot:
		switch req.Width {
		case 2:
			r := blas.DotF2Parallel(wire.Unpack2(req.X), wire.Unpack2(req.Y), workers)
			return r[:]
		case 3:
			r := blas.DotF3Parallel(wire.Unpack3(req.X), wire.Unpack3(req.Y), workers)
			return r[:]
		default:
			r := blas.DotF4Parallel(wire.Unpack4(req.X), wire.Unpack4(req.Y), workers)
			return r[:]
		}
	case wire.OpAxpy:
		switch req.Width {
		case 2:
			y := wire.Unpack2(req.Y)
			blas.AxpyF2Parallel([2]float64(req.Alpha), wire.Unpack2(req.X), y, workers)
			return wire.Pack2(y)
		case 3:
			y := wire.Unpack3(req.Y)
			blas.AxpyF3Parallel([3]float64(req.Alpha), wire.Unpack3(req.X), y, workers)
			return wire.Pack3(y)
		default:
			y := wire.Unpack4(req.Y)
			blas.AxpyF4Parallel([4]float64(req.Alpha), wire.Unpack4(req.X), y, workers)
			return wire.Pack4(y)
		}
	case wire.OpGemv:
		n, m := req.Count, req.M
		switch req.Width {
		case 2:
			y := make([]mfF2, n)
			blas.GemvTiledF2Parallel(wire.Unpack2(req.X), n, m, wire.Unpack2(req.Y), y, workers)
			return wire.Pack2(y)
		case 3:
			y := make([]mfF3, n)
			blas.GemvTiledF3Parallel(wire.Unpack3(req.X), n, m, wire.Unpack3(req.Y), y, workers)
			return wire.Pack3(y)
		default:
			y := make([]mfF4, n)
			blas.GemvTiledF4Parallel(wire.Unpack4(req.X), n, m, wire.Unpack4(req.Y), y, workers)
			return wire.Pack4(y)
		}
	case wire.OpGemm:
		n := req.Count
		switch req.Width {
		case 2:
			c := make([]mfF2, n*n)
			blas.GemmBlockedF2Parallel(wire.Unpack2(req.X), wire.Unpack2(req.Y), c, n, workers)
			return wire.Pack2(c)
		case 3:
			c := make([]mfF3, n*n)
			blas.GemmBlockedF3Parallel(wire.Unpack3(req.X), wire.Unpack3(req.Y), c, n, workers)
			return wire.Pack3(c)
		default:
			c := make([]mfF4, n*n)
			blas.GemmBlockedF4Parallel(wire.Unpack4(req.X), wire.Unpack4(req.Y), c, n, workers)
			return wire.Pack4(c)
		}
	}
	panic(fmt.Sprintf("execBlas: unreachable op %v", req.Op))
}
