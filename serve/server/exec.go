package server

import (
	"fmt"

	"multifloats/internal/blas"
	"multifloats/mf"
	"multifloats/serve/wire"
)

// Slab executors. Scalar batches are assembled as structure-of-arrays
// slabs (one contiguous plane per expansion component — see
// internal/blas/soa.go) and run through the generated multi-lane
// kernels, which transcribe the internal/core gate networks verbatim —
// so a remote result is bit-identical to the corresponding in-process
// call no matter how requests were batched. The slab is split across
// the internal/blas worker pool.

// soaLaneOps maps the scalar wire ops onto the generated lane kernels.
// Adding a scalar op is one entry here (plus its blas.LaneOp constant
// and generator case); the executor below needs no change.
var soaLaneOps = [...]blas.LaneOp{
	wire.OpAdd:  blas.LaneOpAdd,
	wire.OpSub:  blas.LaneOpSub,
	wire.OpMul:  blas.LaneOpMul,
	wire.OpDiv:  blas.LaneOpDiv,
	wire.OpSqrt: blas.LaneOpSqrt,
}

// execSoASlab computes z[i] = op(x[i], y[i]) elementwise over count
// width-w expansions held in SoA planes (y is ignored for unary ops).
// op must be a validated scalar op (admission checks wire.Op.Scalar()).
func execSoASlab(op wire.Op, width int, x, y, z *blas.SoA, count, workers int) {
	if op.Math() {
		execMathSlab(op, width, x, y, z, count, workers)
		return
	}
	kern := blas.LaneKernel(soaLaneOps[op], width)
	blas.Parallel(count, workers, func(lo, hi int) {
		kern(x, y, z, lo, hi)
	})
}

// transcender is the elementary-function surface shared by the three
// expansion widths (mf/math.go); Atan2 is a package function, not a
// method, so the per-width loops below special-case it.
type transcender[E any] interface {
	Exp() E
	Expm1() E
	Exp2() E
	Log() E
	Log1p() E
	Log2() E
	Log10() E
	Sin() E
	Cos() E
	Tan() E
	Asin() E
	Acos() E
	Atan() E
	Sinh() E
	Cosh() E
	Tanh() E
	Cbrt() E
	Pow(E) E
	Hypot(E) E
}

// applyMath dispatches one element through the mf scalar kernel for op.
func applyMath[E transcender[E]](op wire.Op, x, y E) E {
	switch op {
	case wire.OpExp:
		return x.Exp()
	case wire.OpExpm1:
		return x.Expm1()
	case wire.OpExp2:
		return x.Exp2()
	case wire.OpLog:
		return x.Log()
	case wire.OpLog1p:
		return x.Log1p()
	case wire.OpLog2:
		return x.Log2()
	case wire.OpLog10:
		return x.Log10()
	case wire.OpSin:
		return x.Sin()
	case wire.OpCos:
		return x.Cos()
	case wire.OpTan:
		return x.Tan()
	case wire.OpAsin:
		return x.Asin()
	case wire.OpAcos:
		return x.Acos()
	case wire.OpAtan:
		return x.Atan()
	case wire.OpSinh:
		return x.Sinh()
	case wire.OpCosh:
		return x.Cosh()
	case wire.OpTanh:
		return x.Tanh()
	case wire.OpCbrt:
		return x.Cbrt()
	case wire.OpPow:
		return x.Pow(y)
	case wire.OpHypot:
		return x.Hypot(y)
	}
	panic(fmt.Sprintf("applyMath: unreachable op %v", op))
}

// execMathSlab is execSoASlab for the transcendental family. The mf
// kernels are scalar (no generated multi-lane transcription exists for
// them), so the slab is walked element by element; the work per element
// is hundreds of arithmetic ops, which keeps the loop overhead — and the
// AoS reassembly per element — noise. Results remain bit-identical to
// local mf calls: each element runs the exact same scalar code path.
func execMathSlab(op wire.Op, width int, x, y, z *blas.SoA, count, workers int) {
	blas.Parallel(count, workers, func(lo, hi int) {
		switch width {
		case 2:
			for i := lo; i < hi; i++ {
				a := mfF2{x[0][i], x[1][i]}
				var r mfF2
				if op == wire.OpAtan2 {
					r = mf.Atan2F2(a, mfF2{y[0][i], y[1][i]})
				} else if op.Unary() {
					r = applyMath(op, a, mfF2{})
				} else {
					r = applyMath(op, a, mfF2{y[0][i], y[1][i]})
				}
				z[0][i], z[1][i] = r[0], r[1]
			}
		case 3:
			for i := lo; i < hi; i++ {
				a := mfF3{x[0][i], x[1][i], x[2][i]}
				var r mfF3
				if op == wire.OpAtan2 {
					r = mf.Atan2F3(a, mfF3{y[0][i], y[1][i], y[2][i]})
				} else if op.Unary() {
					r = applyMath(op, a, mfF3{})
				} else {
					r = applyMath(op, a, mfF3{y[0][i], y[1][i], y[2][i]})
				}
				z[0][i], z[1][i], z[2][i] = r[0], r[1], r[2]
			}
		default:
			for i := lo; i < hi; i++ {
				a := mfF4{x[0][i], x[1][i], x[2][i], x[3][i]}
				var r mfF4
				if op == wire.OpAtan2 {
					r = mf.Atan2F4(a, mfF4{y[0][i], y[1][i], y[2][i], y[3][i]})
				} else if op.Unary() {
					r = applyMath(op, a, mfF4{})
				} else {
					r = applyMath(op, a, mfF4{y[0][i], y[1][i], y[2][i], y[3][i]})
				}
				z[0][i], z[1][i], z[2][i], z[3][i] = r[0], r[1], r[2], r[3]
			}
		}
	})
}

// execBlas runs a validated BLAS request on the specialized kernels —
// the same tiled/blocked paths the benchmarks measure — and returns the
// result slab. Determinism: each kernel's operation order is a pure
// function of (shape, workers), so a client comparing against a local
// call with the same worker count sees bit-identical results.
func execBlas(req *wire.Request, workers int) []float64 {
	switch req.Op {
	case wire.OpDot:
		switch req.Width {
		case 2:
			r := blas.DotF2Parallel(wire.Unpack2(req.X), wire.Unpack2(req.Y), workers)
			return r[:]
		case 3:
			r := blas.DotF3Parallel(wire.Unpack3(req.X), wire.Unpack3(req.Y), workers)
			return r[:]
		default:
			r := blas.DotF4Parallel(wire.Unpack4(req.X), wire.Unpack4(req.Y), workers)
			return r[:]
		}
	case wire.OpAxpy:
		switch req.Width {
		case 2:
			y := wire.Unpack2(req.Y)
			blas.AxpyF2Parallel([2]float64(req.Alpha), wire.Unpack2(req.X), y, workers)
			return wire.Pack2(y)
		case 3:
			y := wire.Unpack3(req.Y)
			blas.AxpyF3Parallel([3]float64(req.Alpha), wire.Unpack3(req.X), y, workers)
			return wire.Pack3(y)
		default:
			y := wire.Unpack4(req.Y)
			blas.AxpyF4Parallel([4]float64(req.Alpha), wire.Unpack4(req.X), y, workers)
			return wire.Pack4(y)
		}
	case wire.OpGemv:
		n, m := req.Count, req.M
		switch req.Width {
		case 2:
			y := make([]mfF2, n)
			blas.GemvTiledF2Parallel(wire.Unpack2(req.X), n, m, wire.Unpack2(req.Y), y, workers)
			return wire.Pack2(y)
		case 3:
			y := make([]mfF3, n)
			blas.GemvTiledF3Parallel(wire.Unpack3(req.X), n, m, wire.Unpack3(req.Y), y, workers)
			return wire.Pack3(y)
		default:
			y := make([]mfF4, n)
			blas.GemvTiledF4Parallel(wire.Unpack4(req.X), n, m, wire.Unpack4(req.Y), y, workers)
			return wire.Pack4(y)
		}
	case wire.OpGemm:
		n := req.Count
		switch req.Width {
		case 2:
			c := make([]mfF2, n*n)
			blas.GemmBlockedF2Parallel(wire.Unpack2(req.X), wire.Unpack2(req.Y), c, n, workers)
			return wire.Pack2(c)
		case 3:
			c := make([]mfF3, n*n)
			blas.GemmBlockedF3Parallel(wire.Unpack3(req.X), wire.Unpack3(req.Y), c, n, workers)
			return wire.Pack3(c)
		default:
			c := make([]mfF4, n*n)
			blas.GemmBlockedF4Parallel(wire.Unpack4(req.X), wire.Unpack4(req.Y), c, n, workers)
			return wire.Pack4(c)
		}
	}
	panic(fmt.Sprintf("execBlas: unreachable op %v", req.Op))
}
