package server

import (
	"fmt"

	"multifloats/internal/blas"
	"multifloats/serve/wire"
)

// Slab executors. Scalar batches are assembled as structure-of-arrays
// slabs (one contiguous plane per expansion component — see
// internal/blas/soa.go) and run through the generated multi-lane
// kernels, which transcribe the internal/core gate networks verbatim —
// so a remote result is bit-identical to the corresponding in-process
// call no matter how requests were batched. The slab is split across
// the internal/blas worker pool.

// soaLaneOps maps the scalar wire ops onto the generated lane kernels.
// Adding a scalar op is one entry here (plus its blas.LaneOp constant
// and generator case); the executor below needs no change.
var soaLaneOps = [...]blas.LaneOp{
	wire.OpAdd:  blas.LaneOpAdd,
	wire.OpSub:  blas.LaneOpSub,
	wire.OpMul:  blas.LaneOpMul,
	wire.OpDiv:  blas.LaneOpDiv,
	wire.OpSqrt: blas.LaneOpSqrt,
}

// execSoASlab computes z[i] = op(x[i], y[i]) elementwise over count
// width-w expansions held in SoA planes (y is ignored for unary ops).
// op must be a validated scalar op (admission checks wire.Op.Scalar()).
func execSoASlab(op wire.Op, width int, x, y, z *blas.SoA, count, workers int) {
	kern := blas.LaneKernel(soaLaneOps[op], width)
	blas.Parallel(count, workers, func(lo, hi int) {
		kern(x, y, z, lo, hi)
	})
}

// execBlas runs a validated BLAS request on the specialized kernels —
// the same tiled/blocked paths the benchmarks measure — and returns the
// result slab. Determinism: each kernel's operation order is a pure
// function of (shape, workers), so a client comparing against a local
// call with the same worker count sees bit-identical results.
func execBlas(req *wire.Request, workers int) []float64 {
	switch req.Op {
	case wire.OpDot:
		switch req.Width {
		case 2:
			r := blas.DotF2Parallel(wire.Unpack2(req.X), wire.Unpack2(req.Y), workers)
			return r[:]
		case 3:
			r := blas.DotF3Parallel(wire.Unpack3(req.X), wire.Unpack3(req.Y), workers)
			return r[:]
		default:
			r := blas.DotF4Parallel(wire.Unpack4(req.X), wire.Unpack4(req.Y), workers)
			return r[:]
		}
	case wire.OpAxpy:
		switch req.Width {
		case 2:
			y := wire.Unpack2(req.Y)
			blas.AxpyF2Parallel([2]float64(req.Alpha), wire.Unpack2(req.X), y, workers)
			return wire.Pack2(y)
		case 3:
			y := wire.Unpack3(req.Y)
			blas.AxpyF3Parallel([3]float64(req.Alpha), wire.Unpack3(req.X), y, workers)
			return wire.Pack3(y)
		default:
			y := wire.Unpack4(req.Y)
			blas.AxpyF4Parallel([4]float64(req.Alpha), wire.Unpack4(req.X), y, workers)
			return wire.Pack4(y)
		}
	case wire.OpGemv:
		n, m := req.Count, req.M
		switch req.Width {
		case 2:
			y := make([]mfF2, n)
			blas.GemvTiledF2Parallel(wire.Unpack2(req.X), n, m, wire.Unpack2(req.Y), y, workers)
			return wire.Pack2(y)
		case 3:
			y := make([]mfF3, n)
			blas.GemvTiledF3Parallel(wire.Unpack3(req.X), n, m, wire.Unpack3(req.Y), y, workers)
			return wire.Pack3(y)
		default:
			y := make([]mfF4, n)
			blas.GemvTiledF4Parallel(wire.Unpack4(req.X), n, m, wire.Unpack4(req.Y), y, workers)
			return wire.Pack4(y)
		}
	case wire.OpGemm:
		n := req.Count
		switch req.Width {
		case 2:
			c := make([]mfF2, n*n)
			blas.GemmBlockedF2Parallel(wire.Unpack2(req.X), wire.Unpack2(req.Y), c, n, workers)
			return wire.Pack2(c)
		case 3:
			c := make([]mfF3, n*n)
			blas.GemmBlockedF3Parallel(wire.Unpack3(req.X), wire.Unpack3(req.Y), c, n, workers)
			return wire.Pack3(c)
		default:
			c := make([]mfF4, n*n)
			blas.GemmBlockedF4Parallel(wire.Unpack4(req.X), wire.Unpack4(req.Y), c, n, workers)
			return wire.Pack4(c)
		}
	}
	panic(fmt.Sprintf("execBlas: unreachable op %v", req.Op))
}
