package server

import (
	"context"
	"sync"
	"time"

	"multifloats/internal/blas"
	"multifloats/serve/wire"
)

// A lane is the batching queue for one (scalar op, width) pair. Requests
// accumulate under the lane lock; a flush happens when the batch reaches
// MaxBatch, when the batch window expires, or when the earliest member
// deadline would otherwise pass while waiting (fail-fast: an expired
// request is answered without executing). One flush concatenates every
// member's operands into a single slab, runs the elementwise kernel once
// across the worker pool, then splits the result back per request —
// amortizing scheduling, kernel dispatch, and (because all responses to
// one connection share a single buffered flush) response syscalls.

type laneKey struct {
	op    wire.Op
	width int
}

type pending struct {
	c      *srvConn
	id     uint64
	ctx    context.Context
	cancel context.CancelFunc
	count  int // expansion elements in this request
	x, y   []float64
}

type lane struct {
	s     *Server
	op    wire.Op
	width int

	mu    sync.Mutex
	reqs  []*pending
	timer *time.Timer
	due   time.Time // zero when no flush is scheduled
}

// enqueue admits p or rejects it with backpressure. It never blocks: a
// full queue answers StatusOverloaded immediately (with a retry-after
// hint of one batch window) and drops the request.
func (l *lane) enqueue(p *pending) {
	cfg := &l.s.cfg
	l.mu.Lock()
	if len(l.reqs) >= cfg.QueueDepth {
		l.mu.Unlock()
		l.s.stats.overload()
		retry := uint32(cfg.BatchWindow / time.Millisecond)
		if retry == 0 {
			retry = 1
		}
		p.c.writeResponse(&wire.Response{ID: p.id, Status: wire.StatusOverloaded, RetryAfterMs: retry}, true)
		p.cancel()
		return
	}
	l.reqs = append(l.reqs, p)
	l.s.stats.enqueue(1)
	if len(l.reqs) >= cfg.MaxBatch || cfg.BatchWindow <= 0 {
		batch := l.takeLocked()
		l.mu.Unlock()
		l.exec(batch)
		return
	}
	// Schedule (or pull forward) the window flush; a member deadline
	// sooner than the window end pulls the flush to the deadline so the
	// request is answered the moment it expires rather than lingering.
	due := time.Now().Add(cfg.BatchWindow)
	if d, ok := p.ctx.Deadline(); ok && d.Before(due) {
		due = d
	}
	if l.due.IsZero() || due.Before(l.due) {
		l.due = due
		if l.timer == nil {
			l.timer = time.AfterFunc(time.Until(due), l.onTimer)
		} else {
			l.timer.Reset(time.Until(due))
		}
	}
	l.mu.Unlock()
}

// takeLocked removes and returns the current batch (up to MaxBatch
// requests) and clears the scheduled flush. Callers hold l.mu.
func (l *lane) takeLocked() []*pending {
	n := len(l.reqs)
	if n > l.s.cfg.MaxBatch {
		n = l.s.cfg.MaxBatch
	}
	batch := make([]*pending, n)
	copy(batch, l.reqs[:n])
	rest := copy(l.reqs, l.reqs[n:])
	for i := rest; i < len(l.reqs); i++ {
		l.reqs[i] = nil
	}
	l.reqs = l.reqs[:rest]
	l.due = time.Time{}
	if l.timer != nil {
		if rest > 0 {
			// Leftovers (arrivals beyond MaxBatch): flush them promptly.
			l.due = time.Now()
			l.timer.Reset(0)
		} else {
			l.timer.Stop()
		}
	}
	l.s.stats.enqueue(int64(-n))
	return batch
}

func (l *lane) onTimer() {
	l.mu.Lock()
	if len(l.reqs) == 0 {
		l.due = time.Time{}
		l.mu.Unlock()
		return
	}
	batch := l.takeLocked()
	l.mu.Unlock()
	l.exec(batch)
}

// drain flushes everything pending, looping until the lane is empty.
// Used by Shutdown after new arrivals are fenced off.
func (l *lane) drain() {
	for {
		l.mu.Lock()
		if len(l.reqs) == 0 {
			l.mu.Unlock()
			return
		}
		batch := l.takeLocked()
		l.mu.Unlock()
		l.exec(batch)
	}
}

// soaBatch is one flush's pooled slab assembly: a single backing buffer
// partitioned into the x, y, z component planes of a width-w SoA slab
// plus the interleaved output area the responses point into. Recycling
// the whole assembly keeps the flush path allocation-free in steady
// state (the map and Response headers in exec are the only per-flush
// allocations left).
type soaBatch struct {
	buf     []float64
	x, y, z blas.SoA
	out     []float64
}

var soaBatchPool = sync.Pool{New: func() any { return new(soaBatch) }}

// getSoABatch returns an assembly sized for elems width-w expansions:
// planes x[j], y[j], z[j] (j < w; the rest nil) of elems values each,
// and out with room for the elems·w interleaved results.
func getSoABatch(w, elems int) *soaBatch {
	b := soaBatchPool.Get().(*soaBatch)
	need := 4 * w * elems
	if cap(b.buf) < need {
		b.buf = make([]float64, need)
	}
	buf := b.buf[:need]
	for j := range b.x {
		if j < w {
			b.x[j] = buf[j*elems : (j+1)*elems]
			b.y[j] = buf[(w+j)*elems : (w+j+1)*elems]
			b.z[j] = buf[(2*w+j)*elems : (2*w+j+1)*elems]
		} else {
			b.x[j], b.y[j], b.z[j] = nil, nil, nil
		}
	}
	b.out = buf[3*w*elems : 4*w*elems]
	return b
}

func putSoABatch(b *soaBatch) { soaBatchPool.Put(b) }

// gatherSoA deinterleaves one request's wire-format operand slab
// (len(src)/w expansions, component j of element i at src[i*w+j]) into
// the batch planes starting at element offset off. Batch assembly
// writes each operand straight from the request buffer into its plane —
// there is never an intermediate interleaved slab to transpose.
func gatherSoA(dst *blas.SoA, w, off int, src []float64) {
	n := len(src) / w
	for j := 0; j < w; j++ {
		p := dst[j][off : off+n]
		for i := range p {
			p[i] = src[i*w+j]
		}
	}
}

// scatterSoA interleaves elems results from the z planes into the
// wire-format output slab.
func scatterSoA(dst []float64, w int, src *blas.SoA, elems int) {
	for j := 0; j < w; j++ {
		p := src[j][:elems]
		for i, v := range p {
			dst[i*w+j] = v
		}
	}
}

// exec runs one batch: expired members are answered StatusDeadlineExceeded
// without executing (their ctx carries the per-request deadline); live
// members' operands are gathered into one SoA slab, executed once across
// the pool by the generated lane kernels, and the results scattered back.
// Responses are buffered per connection and each touched connection is
// flushed exactly once.
func (l *lane) exec(batch []*pending) {
	live := batch[:0:len(batch)]
	var elems int
	byConn := make(map[*srvConn][]wire.Response, 2)
	now := time.Now()
	for _, p := range batch {
		// The wall-clock check matters when this flush was pulled forward to
		// a member deadline: the lane timer and the context's expiry timer
		// fire at the same instant, and ctx.Err() may not be set yet.
		expired := p.ctx.Err() != nil
		if d, ok := p.ctx.Deadline(); !expired && ok && !now.Before(d) {
			expired = true
		}
		if expired {
			l.s.stats.deadline()
			byConn[p.c] = append(byConn[p.c], wire.Response{ID: p.id, Status: wire.StatusDeadlineExceeded})
			p.cancel()
			continue
		}
		live = append(live, p)
		elems += p.count
	}
	var sb *soaBatch
	if len(live) > 0 {
		l.s.stats.batch(int64(len(live)), int64(elems))
		w := l.width
		sb = getSoABatch(w, elems)
		unary := l.op.Unary()
		off := 0
		for _, p := range live {
			gatherSoA(&sb.x, w, off, p.x)
			if !unary {
				gatherSoA(&sb.y, w, off, p.y)
			}
			off += p.count
		}
		execSoASlab(l.op, w, &sb.x, &sb.y, &sb.z, elems, l.s.cfg.Workers)
		scatterSoA(sb.out, w, &sb.z, elems)
		fo := 0
		for _, p := range live {
			n := p.count * w
			byConn[p.c] = append(byConn[p.c], wire.Response{ID: p.id, Status: wire.StatusOK, Data: sb.out[fo : fo+n]})
			fo += n
			p.cancel()
		}
	}
	// One writer-lock hold, one counter update, and one flush per touched
	// connection, however many batch members it contributed.
	for c, resps := range byConn {
		c.writeResponses(resps)
	}
	if sb != nil {
		// Safe to recycle: writeResponses serializes each response's Data
		// into the connection's buffered writer before returning, so no
		// reference to sb.out survives the loop above.
		putSoABatch(sb)
	}
}
