package server

import (
	"expvar"
	"sync/atomic"
)

// Stats are per-Server atomic counters. Every increment is mirrored into
// the process-wide expvar map below (exported at /debug/vars when the
// daemon's debug listener is enabled), so tests can assert on a specific
// Server instance while operators scrape one stable namespace.
type Stats struct {
	Requests       atomic.Int64 // frames accepted off the wire
	Responses      atomic.Int64 // frames written back
	Batches        atomic.Int64 // slab executions (scalar lanes)
	BatchedReqs    atomic.Int64 // requests carried by those batches
	BatchedElems   atomic.Int64 // expansion elements carried by those batches
	Overloads      atomic.Int64 // requests rejected with StatusOverloaded
	DeadlineMisses atomic.Int64 // requests answered StatusDeadlineExceeded
	ProtocolErrors atomic.Int64 // malformed frames / bad requests
	ChecksumErrors atomic.Int64 // frames rejected on CRC32C mismatch
	IdleTimeouts   atomic.Int64 // connections closed for idling/stalling
	QueueDepth     atomic.Int64 // scalar requests currently enqueued
	ActiveConns    atomic.Int64
	ReduceChunks   atomic.Int64 // reduction chunks folded
	Reductions     atomic.Int64 // reduction streams completed (result returned)
}

// Snapshot is a plain-struct copy for JSON reporting.
type Snapshot struct {
	Requests       int64 `json:"requests"`
	Responses      int64 `json:"responses"`
	Batches        int64 `json:"batches"`
	BatchedReqs    int64 `json:"batched_requests"`
	BatchedElems   int64 `json:"batched_elements"`
	Overloads      int64 `json:"overloads"`
	DeadlineMisses int64 `json:"deadline_misses"`
	ProtocolErrors int64 `json:"protocol_errors"`
	ChecksumErrors int64 `json:"checksum_errors"`
	IdleTimeouts   int64 `json:"idle_timeouts"`
	QueueDepth     int64 `json:"queue_depth"`
	ActiveConns    int64 `json:"active_conns"`
	ReduceChunks   int64 `json:"reduce_chunks"`
	Reductions     int64 `json:"reductions"`
}

// Snapshot returns a consistent-enough point-in-time copy.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Requests:       s.Requests.Load(),
		Responses:      s.Responses.Load(),
		Batches:        s.Batches.Load(),
		BatchedReqs:    s.BatchedReqs.Load(),
		BatchedElems:   s.BatchedElems.Load(),
		Overloads:      s.Overloads.Load(),
		DeadlineMisses: s.DeadlineMisses.Load(),
		ProtocolErrors: s.ProtocolErrors.Load(),
		ChecksumErrors: s.ChecksumErrors.Load(),
		IdleTimeouts:   s.IdleTimeouts.Load(),
		QueueDepth:     s.QueueDepth.Load(),
		ActiveConns:    s.ActiveConns.Load(),
		ReduceChunks:   s.ReduceChunks.Load(),
		Reductions:     s.Reductions.Load(),
	}
}

// Process-wide expvar counters, aggregated across all Server instances in
// the process (names are registered once; expvar panics on duplicates).
// mean batch occupancy = mfserve.batched_requests / mfserve.batches.
var (
	evRequests       = expvar.NewInt("mfserve.requests")
	evResponses      = expvar.NewInt("mfserve.responses")
	evBatches        = expvar.NewInt("mfserve.batches")
	evBatchedReqs    = expvar.NewInt("mfserve.batched_requests")
	evBatchedElems   = expvar.NewInt("mfserve.batched_elements")
	evOverloads      = expvar.NewInt("mfserve.overloads")
	evDeadlineMisses = expvar.NewInt("mfserve.deadline_misses")
	evProtocolErrors = expvar.NewInt("mfserve.protocol_errors")
	evChecksumErrors = expvar.NewInt("mfserve.checksum_errors")
	evIdleTimeouts   = expvar.NewInt("mfserve.idle_timeouts")
	evQueueDepth     = expvar.NewInt("mfserve.queue_depth")
	evConns          = expvar.NewInt("mfserve.conns")
	evReduceChunks   = expvar.NewInt("mfserve.reduce_chunks")
	evReductions     = expvar.NewInt("mfserve.reductions")
)

func (s *Stats) reqIn()   { s.Requests.Add(1); evRequests.Add(1) }
func (s *Stats) respOut() { s.Responses.Add(1); evResponses.Add(1) }
func (s *Stats) respOutN(n int64) {
	s.Responses.Add(n)
	evResponses.Add(n)
}
func (s *Stats) overload() { s.Overloads.Add(1); evOverloads.Add(1) }
func (s *Stats) deadline() { s.DeadlineMisses.Add(1); evDeadlineMisses.Add(1) }
func (s *Stats) protoErr() { s.ProtocolErrors.Add(1); evProtocolErrors.Add(1) }
func (s *Stats) checksumErr() {
	s.ChecksumErrors.Add(1)
	evChecksumErrors.Add(1)
}
func (s *Stats) idleTimeout() {
	s.IdleTimeouts.Add(1)
	evIdleTimeouts.Add(1)
}
func (s *Stats) enqueue(n int64) {
	s.QueueDepth.Add(n)
	evQueueDepth.Add(n)
}
func (s *Stats) batch(reqs, elems int64) {
	s.Batches.Add(1)
	s.BatchedReqs.Add(reqs)
	s.BatchedElems.Add(elems)
	evBatches.Add(1)
	evBatchedReqs.Add(reqs)
	evBatchedElems.Add(elems)
}
func (s *Stats) connOpen()  { s.ActiveConns.Add(1); evConns.Add(1) }
func (s *Stats) connClose() { s.ActiveConns.Add(-1); evConns.Add(-1) }
func (s *Stats) reduceChunk() {
	s.ReduceChunks.Add(1)
	evReduceChunks.Add(1)
}
func (s *Stats) reduceDone() {
	s.Reductions.Add(1)
	evReductions.Add(1)
}
