package server_test

// Raw-final reductions (wire.FlagReduceRaw): the shard-merge hook the
// cluster tier is built on. A raw final chunk returns the serialized
// superaccumulator instead of the rounded expansion; merging shard
// accumulators and folding once must be bit-identical to one server
// folding the whole stream.

import (
	"bufio"
	"math"
	"net"
	"testing"

	"multifloats/internal/diffuzz"
	"multifloats/internal/exact"
	"multifloats/serve/server"
	"multifloats/serve/wire"
)

// rawPeer is a minimal raw-wire client: one connection, synchronous
// request/response, no pipelining — just enough to speak frames the
// pooled client does not yet shape (hop counts, raw finals).
type rawPeer struct {
	t    *testing.T
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawPeer {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawPeer{t: t, conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn)}
}

func (p *rawPeer) roundTrip(req *wire.Request) *wire.Response {
	p.t.Helper()
	if err := wire.WriteRequest(p.bw, req); err != nil {
		p.t.Fatalf("WriteRequest: %v", err)
	}
	if err := p.bw.Flush(); err != nil {
		p.t.Fatalf("flush: %v", err)
	}
	resp, err := wire.ReadResponse(p.br)
	if err != nil {
		p.t.Fatalf("ReadResponse: %v", err)
	}
	if resp.ID != req.ID {
		p.t.Fatalf("response ID %d for request %d", resp.ID, req.ID)
	}
	return resp
}

// streamRaw drives one reduction stream (chunked over xs/ys) ending in a
// raw final, and returns the decoded accumulator.
func streamRaw(t *testing.T, p *rawPeer, id uint64, op wire.Op, width, chunk int, xs, ys []float64) *exact.Accumulator {
	t.Helper()
	total := len(xs) / width
	sent := 0
	for {
		n := min(chunk, total-sent)
		req := &wire.Request{ID: id, Op: op, Width: width, Count: n,
			X: xs[sent*width : (sent+n)*width]}
		if op == wire.OpDotExact {
			req.Y = ys[sent*width : (sent+n)*width]
		}
		sent += n
		if sent == total {
			req.M = wire.FlagReduceFinal | wire.FlagReduceRaw
		}
		resp := p.roundTrip(req)
		if resp.Status != wire.StatusOK {
			t.Fatalf("chunk status %v", resp.Status)
		}
		if sent == total {
			if len(resp.Data) != wire.ReduceRawElems {
				t.Fatalf("raw final returned %d words, want %d", len(resp.Data), wire.ReduceRawElems)
			}
			acc, err := exact.DecodeFloats(resp.Data)
			if err != nil {
				t.Fatalf("DecodeFloats: %v", err)
			}
			return acc
		}
		if len(resp.Data) != 0 {
			t.Fatalf("non-final ack carried %d words", len(resp.Data))
		}
	}
}

// TestE2ERawFinalShardMerge splits adversarial reduction streams across
// two "shards" (two raw connections, interleaved elements), asks each
// for a raw final, merges, and demands the single-server rounded answer
// bit-for-bit — for both ops, all widths, and a NaN/Inf corpus too.
func TestE2ERawFinalShardMerge(t *testing.T) {
	s, _ := startE2E(t, server.Config{})
	pa, pb := dialRaw(t, s.Addr().String()), dialRaw(t, s.Addr().String())
	gen := diffuzz.NewGen(7)
	const count = 101

	var id uint64
	for round := 0; round < 6; round++ {
		for w := 1; w <= 4; w++ {
			for _, op := range []wire.Op{wire.OpSumExact, wire.OpDotExact} {
				xs := slabOf(gen.ReduceVector(w, count))
				ys := slabOf(gen.ReduceVector(w, count))
				// Whole-stream reference on one connection, rounded by the
				// server itself via a raw final folded locally.
				id++
				whole := streamRaw(t, pa, id, op, w, 17, xs, ys)
				want := whole.SumExpansion(w)

				// Shard: even elements to peer A, odd to peer B.
				var ax, ay, bx, by []float64
				for i := 0; i < count; i++ {
					if i%2 == 0 {
						ax = append(ax, xs[i*w:(i+1)*w]...)
						ay = append(ay, ys[i*w:(i+1)*w]...)
					} else {
						bx = append(bx, xs[i*w:(i+1)*w]...)
						by = append(by, ys[i*w:(i+1)*w]...)
					}
				}
				id++
				accA := streamRaw(t, pa, id, op, w, 13, ax, ay)
				id++
				accB := streamRaw(t, pb, id, op, w, 11, bx, by)
				accA.Merge(accB)
				got := accA.SumExpansion(w)
				for k := range want {
					if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
						t.Fatalf("round %d op %v w %d: merged[%d] = %x, want %x",
							round, op, w, k, got[k], want[k])
					}
				}
			}
		}
	}
	if s.Stats().Snapshot().Reductions == 0 {
		t.Fatal("server counted no completed reductions")
	}
}

// TestE2ERawFinalRejectsNonFinal: FlagReduceRaw on a non-final chunk is
// malformed and must kill the connection (frame-level reject), not be
// silently ignored.
func TestE2ERawFinalRejectsNonFinal(t *testing.T) {
	s, _ := startE2E(t, server.Config{})
	p := dialRaw(t, s.Addr().String())
	// WriteRequest itself doesn't validate flags; the server must. Build
	// the hostile frame directly.
	req := &wire.Request{ID: 1, Op: wire.OpSumExact, Width: 1, Count: 2,
		M: wire.FlagReduceRaw, X: []float64{1, 2}}
	if err := wire.WriteRequest(p.bw, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := p.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	resp, err := wire.ReadResponse(p.br)
	if err == nil && resp.Status == wire.StatusOK {
		t.Fatalf("raw non-final chunk accepted: %+v", resp)
	}
}
