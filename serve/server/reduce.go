package server

import (
	"context"
	"sync"

	"multifloats/internal/exact"
	"multifloats/serve/wire"
)

// Streaming exact reductions (wire.OpSumExact / wire.OpDotExact).
//
// A reduction is a sequence of request frames sharing one ID on one
// connection. Each chunk is folded into a per-(connection, ID)
// superaccumulator on the reader goroutine — connection state is only
// ever touched by its own reader, so no locking — and acknowledged
// with an empty StatusOK; the FlagReduceFinal chunk folds, rounds the
// accumulator to the request width, returns the result slab, and
// releases the state. Because the accumulator is exact and
// merge-associative (internal/exact), the response is bit-identical
// for every chunk split, chunk arrival order, and fold parallelism.

// maxOpenReductions caps concurrent reduction streams per connection so
// a hostile peer cannot pin unbounded accumulator memory by opening
// streams it never finishes (each accumulator is ~1 KiB).
const maxOpenReductions = 256

// The wire protocol promises a raw-final reduction response is exactly
// one serialized accumulator. wire must not import internal/exact (it
// is protocol-only), so the equality is asserted here, where both sides
// meet: either array length goes negative — a compile error — if the
// constants ever drift apart.
var (
	_ [exact.EncodedWords - wire.ReduceRawElems]struct{}
	_ [wire.ReduceRawElems - exact.EncodedWords]struct{}
)

// parallelFoldElems is the chunk size (in expansion elements) above
// which a fold shards across the configured workers. Below it the
// goroutine handoff costs more than the integer deposits save.
const parallelFoldElems = 4096

type reduction struct {
	op    wire.Op
	width int
	acc   *exact.Accumulator
}

// accPool recycles accumulators across requests and shard folds. Reset
// before Put, so Get always yields an empty sum.
var accPool = sync.Pool{New: func() any { return new(exact.Accumulator) }}

// handleReduce processes one reduction chunk on the reader goroutine.
func (c *srvConn) handleReduce(ctx context.Context, req *wire.Request) error {
	fail := func(status wire.Status) error {
		c.dropReduction(req.ID)
		return c.writeResponse(&wire.Response{ID: req.ID, Status: status}, true)
	}
	if ctx.Err() != nil {
		c.s.stats.deadline()
		return fail(wire.StatusDeadlineExceeded)
	}
	red := c.reds[req.ID]
	switch {
	case red == nil:
		if len(c.reds) >= maxOpenReductions {
			c.s.stats.protoErr()
			return fail(wire.StatusBadRequest)
		}
		red = &reduction{op: req.Op, width: req.Width, acc: accPool.Get().(*exact.Accumulator)}
		if c.reds == nil {
			c.reds = make(map[uint64]*reduction)
		}
		c.reds[req.ID] = red
	case red.op != req.Op || red.width != req.Width:
		// Chunks of one stream must agree on shape; a disagreement is a
		// client bug (or hostility) and poisons the whole stream.
		c.s.stats.protoErr()
		return fail(wire.StatusBadRequest)
	}

	foldChunk(red, req, c.s.cfg.Workers)
	c.s.stats.reduceChunk()
	if req.M&wire.FlagReduceFinal == 0 {
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK}, true)
	}

	delete(c.reds, req.ID)
	var out []float64
	if req.M&wire.FlagReduceRaw != 0 {
		// Raw final: return the serialized accumulator instead of the
		// rounded expansion, so a cluster tier can Merge per-shard state
		// and round exactly once (wire.FlagReduceRaw; the length contract
		// is pinned by the compile-time assertions below).
		out = red.acc.EncodeFloats()
	} else {
		out = red.acc.SumExpansion(red.width)
	}
	releaseAcc(red.acc)
	if ctx.Err() != nil {
		c.s.stats.deadline()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusDeadlineExceeded}, true)
	}
	c.s.stats.reduceDone()
	return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK, Data: out}, true)
}

// foldChunk folds one request's operand slab into the reduction's
// accumulator. Large chunks shard across workers into per-shard
// accumulators merged back in; Merge is exact, so the fold-down is
// bit-identical for every worker count — reductions need no
// single-worker mode to be reproducible.
func foldChunk(red *reduction, req *wire.Request, workers int) {
	elems := req.Count
	shards := workers
	if shards > elems/(parallelFoldElems/2) {
		shards = elems / (parallelFoldElems / 2)
	}
	if shards <= 1 || elems < parallelFoldElems {
		foldRange(red.acc, red.op, red.width, req.X, req.Y, 0, elems)
		return
	}
	parts := make([]*exact.Accumulator, shards)
	chunk := (elems + shards - 1) / shards
	var wg sync.WaitGroup
	for s := range parts {
		lo := s * chunk
		hi := min(lo+chunk, elems)
		if lo >= hi {
			break
		}
		acc := accPool.Get().(*exact.Accumulator)
		parts[s] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			foldRange(acc, red.op, red.width, req.X, req.Y, lo, hi)
		}()
	}
	wg.Wait()
	for _, p := range parts {
		if p != nil {
			red.acc.Merge(p)
			releaseAcc(p)
		}
	}
}

// foldRange folds elements [lo, hi) of the slabs into acc.
func foldRange(acc *exact.Accumulator, op wire.Op, w int, x, y []float64, lo, hi int) {
	if op == wire.OpSumExact {
		acc.AddValues(x[lo*w : hi*w])
		return
	}
	acc.AddDotSlab(w, x[lo*w:hi*w], y[lo*w:hi*w])
}

func releaseAcc(a *exact.Accumulator) {
	a.Reset()
	accPool.Put(a)
}

// dropReduction abandons any open stream for id (deadline expiry or a
// malformed continuation) and recycles its accumulator.
func (c *srvConn) dropReduction(id uint64) {
	if red, ok := c.reds[id]; ok {
		delete(c.reds, id)
		releaseAcc(red.acc)
	}
}

// dropAllReductions releases every open stream; called when the
// connection tears down.
func (c *srvConn) dropAllReductions() {
	for id, red := range c.reds {
		delete(c.reds, id)
		releaseAcc(red.acc)
	}
}
