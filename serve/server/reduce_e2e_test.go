package server_test

// Remote-vs-local bit parity for the streaming exact reductions: every
// SumExact/DotExact answer must be bit-identical to the in-process
// internal/exact fold — at every width, for every chunk size (the
// stream is folded into one superaccumulator, so the split cannot
// matter), and at the default parallel worker count (shard folds merge
// exactly). This is the serving half of the ISSUE 7 order-invariance
// contract; the local half lives in internal/exact's own test tier.

import (
	"context"
	"math"
	"testing"

	"multifloats/internal/diffuzz"
	"multifloats/internal/exact"
	"multifloats/mf"
	"multifloats/serve/client"
	"multifloats/serve/server"
)

func slabOf(v [][]float64) []float64 {
	flat := make([]float64, 0, len(v)*len(v[0]))
	for _, e := range v {
		flat = append(flat, e...)
	}
	return flat
}

func to2s(v [][]float64) []mf.Float64x2 {
	out := make([]mf.Float64x2, len(v))
	for i, e := range v {
		out[i] = mf.Float64x2{e[0], e[1]}
	}
	return out
}

func to3s(v [][]float64) []mf.Float64x3 {
	out := make([]mf.Float64x3, len(v))
	for i, e := range v {
		out[i] = mf.Float64x3{e[0], e[1], e[2]}
	}
	return out
}

func to4s(v [][]float64) []mf.Float64x4 {
	out := make([]mf.Float64x4, len(v))
	for i, e := range v {
		out[i] = mf.Float64x4{e[0], e[1], e[2], e[3]}
	}
	return out
}

func sameSlab(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestE2EReductionParity drives adversarial reduction operands through
// a single-chunk client and a 7-element-chunk streaming client and
// demands both match the local exact fold bit-for-bit.
func TestE2EReductionParity(t *testing.T) {
	s, c := startE2E(t, server.Config{})
	// A second client on the same server, forced into multi-chunk
	// streaming (193 elements → 28 chunks).
	cs, err := client.Dial(s.Addr().String(), client.WithReduceChunk(7))
	if err != nil {
		t.Fatalf("Dial streaming client: %v", err)
	}
	defer cs.Close()
	ctx := context.Background()
	const count = 193

	gen := diffuzz.NewGen(42)
	for round := 0; round < 12; round++ {
		for n := 1; n <= 4; n++ {
			x := gen.ReduceVector(n, count)
			y := gen.ReduceVector(n, count)
			var sumWant, dotWant []float64
			switch n {
			case 1:
				sumWant = []float64{exact.Sum(slabOf(x))}
				dotWant = []float64{exact.Dot(slabOf(x), slabOf(y))}
			case 2:
				sw, dw := exact.Sum2(to2s(x)), exact.Dot2(to2s(x), to2s(y))
				sumWant, dotWant = sw[:], dw[:]
			case 3:
				sw, dw := exact.Sum3(to3s(x)), exact.Dot3(to3s(x), to3s(y))
				sumWant, dotWant = sw[:], dw[:]
			default:
				sw, dw := exact.Sum4(to4s(x)), exact.Dot4(to4s(x), to4s(y))
				sumWant, dotWant = sw[:], dw[:]
			}
			for name, cl := range map[string]*client.Client{"single-chunk": c, "streaming": cs} {
				var sumGot, dotGot []float64
				var serr, derr error
				switch n {
				case 1:
					var s, d float64
					s, serr = cl.SumExact(ctx, slabOf(x))
					d, derr = cl.DotExact(ctx, slabOf(x), slabOf(y))
					sumGot, dotGot = []float64{s}, []float64{d}
				case 2:
					var s, d mf.Float64x2
					s, serr = cl.SumExact2(ctx, to2s(x))
					d, derr = cl.DotExact2(ctx, to2s(x), to2s(y))
					sumGot, dotGot = s[:], d[:]
				case 3:
					var s, d mf.Float64x3
					s, serr = cl.SumExact3(ctx, to3s(x))
					d, derr = cl.DotExact3(ctx, to3s(x), to3s(y))
					sumGot, dotGot = s[:], d[:]
				default:
					var s, d mf.Float64x4
					s, serr = cl.SumExact4(ctx, to4s(x))
					d, derr = cl.DotExact4(ctx, to4s(x), to4s(y))
					sumGot, dotGot = s[:], d[:]
				}
				if serr != nil || derr != nil {
					t.Fatalf("round %d width %d %s: sum err %v, dot err %v", round, n, name, serr, derr)
				}
				if !sameSlab(sumGot, sumWant) {
					t.Fatalf("round %d width %d %s: SumExact %v, local %v", round, n, name, sumGot, sumWant)
				}
				if !sameSlab(dotGot, dotWant) {
					t.Fatalf("round %d width %d %s: DotExact %v, local %v", round, n, name, dotGot, dotWant)
				}
			}
		}
	}

	stats := s.Stats().Snapshot()
	if stats.Reductions == 0 {
		t.Fatalf("server counted no completed reductions")
	}
	if stats.ReduceChunks <= stats.Reductions {
		t.Fatalf("reduce_chunks %d not above reductions %d: streaming path never exercised",
			stats.ReduceChunks, stats.Reductions)
	}
}

// TestE2EReductionEmpty: zero-length reductions are valid and return the
// exact package's canonical +0 expansion.
func TestE2EReductionEmpty(t *testing.T) {
	_, c := startE2E(t, server.Config{})
	ctx := context.Background()
	got, err := c.SumExact(ctx, nil)
	if err != nil {
		t.Fatalf("SumExact(nil): %v", err)
	}
	if math.Float64bits(got) != 0 {
		t.Fatalf("SumExact(nil) = %v (%#x), want +0", got, math.Float64bits(got))
	}
	got4, err := c.DotExact4(ctx, nil, nil)
	if err != nil {
		t.Fatalf("DotExact4(nil): %v", err)
	}
	if got4 != (mf.Float64x4{}) {
		t.Fatalf("DotExact4(nil) = %v, want zero expansion", got4)
	}
}

// TestE2EReductionLargeStream pushes one reduction big enough to sweep
// many pipelined windows and the server's parallel shard fold at once,
// with a worst-case corpus: maximal-significand same-magnitude terms
// whose carries propagate the farthest.
func TestE2EReductionLargeStream(t *testing.T) {
	s, c := startE2E(t, server.Config{})
	cs, err := client.Dial(s.Addr().String(), client.WithReduceChunk(512))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cs.Close()
	ctx := context.Background()

	const count = 300_000 // 586 chunks: several 64-chunk client windows
	xs := make([]float64, count)
	for i := range xs {
		v := math.Ldexp(float64(1<<53-1), (i%40)-20-52)
		if i%3 == 0 {
			v = -v
		}
		xs[i] = v
	}
	want := exact.Sum(xs)
	got, err := cs.SumExact(ctx, xs)
	if err != nil {
		t.Fatalf("SumExact: %v", err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("streamed SumExact = %v (%#x), local %v (%#x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
	// And the default-chunk client (65536-element chunks, a different
	// split of the same stream) agrees bit-for-bit.
	gotDefault, err := c.SumExact(ctx, xs)
	if err != nil {
		t.Fatalf("default-chunk SumExact: %v", err)
	}
	if math.Float64bits(gotDefault) != math.Float64bits(want) {
		t.Fatalf("default-chunk SumExact = %v, local %v", gotDefault, want)
	}
}
