// Package server implements the mfserve network service: a TCP listener
// speaking the serve/wire protocol, a per-(op,width) batching scheduler
// that coalesces compatible scalar requests into vectorized slabs
// executed on the internal/blas worker pool, bounded queues with
// reject-with-retry-after backpressure, per-request deadline enforcement
// via contexts, and graceful drain on shutdown.
//
// Request flow: each connection gets a reader goroutine. Scalar requests
// (the Add/Sub/Mul/Div/Sqrt arithmetic and the Exp..Hypot transcendental
// family) are enqueued on their lane and answered asynchronously when the
// lane flushes (batch full, window expired, or a member deadline
// imminent). BLAS requests (Axpy/Dot/Gemv/Gemv) are
// already slab-shaped, so they execute immediately on the reader
// goroutine against the specialized parallel kernels. All responses to a
// connection are serialized through its buffered writer; a batch flush
// writes every member response and performs one flush per touched
// connection, which is where batching pays on the wire as well as in the
// kernels.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"multifloats/internal/blas"
	"multifloats/mf"
	"multifloats/serve/wire"
)

// Local aliases keep the executor's signatures readable.
type (
	mfF2 = mf.Float64x2
	mfF3 = mf.Float64x3
	mfF4 = mf.Float64x4
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// BatchWindow is the maximum time a scalar request waits for
	// batch-mates before its lane flushes (0 takes the default, 200µs).
	// A negative value disables coalescing: every request executes
	// immediately on arrival.
	BatchWindow time.Duration
	// MaxBatch is the flush threshold in requests per lane (default 256;
	// 1 disables coalescing).
	MaxBatch int
	// QueueDepth bounds each lane's pending queue; arrivals beyond it are
	// rejected with StatusOverloaded (default 4096).
	QueueDepth int
	// Workers is the kernel parallelism for slab and BLAS execution
	// (default blas.Workers(), i.e. GOMAXPROCS).
	Workers int
	// MaxDim bounds a single request's operand size (expansion elements
	// per slab) so one frame cannot monopolize the server (default 1<<20).
	MaxDim int
	// IdleTimeout bounds how long a connection may take to deliver its
	// next complete request frame (covering both idle gaps and mid-frame
	// stalls), so a slow-loris peer cannot pin a reader goroutine forever.
	// 0 takes the default (2 minutes); negative disables the timeout.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write+flush, so a peer that stops
	// reading cannot block a lane's batch goroutine on a full TCP window.
	// 0 takes the default (30 seconds); negative disables the timeout.
	WriteTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.Workers <= 0 {
		c.Workers = blas.Workers()
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 1 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Server is one mfserve instance.
type Server struct {
	cfg   Config
	ln    net.Listener
	lanes map[laneKey]*lane

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	conns    map[*srvConn]struct{}
	draining bool

	connWG sync.WaitGroup
	stats  Stats
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		lanes:      make(map[laneKey]*lane),
		baseCtx:    ctx,
		baseCancel: cancel,
		conns:      make(map[*srvConn]struct{}),
	}
	// Every Scalar op — arithmetic and transcendental — gets a batching
	// lane per width. The op code space has gaps, so walk it and filter.
	for op := wire.OpAdd; op <= wire.OpHypot; op++ {
		if !op.Scalar() {
			continue
		}
		for w := 2; w <= 4; w++ {
			s.lanes[laneKey{op, w}] = &lane{s: s, op: op, width: w}
		}
	}
	return s
}

// Stats exposes the server's counters (also mirrored into expvar).
func (s *Server) Stats() *Stats { return &s.stats }

// Listen binds the configured address. Call before Serve; Addr is valid
// afterwards (useful with ":0").
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown (or a fatal listener error).
// It returns nil after a clean shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.isDraining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		c := &srvConn{
			s:  s,
			nc: nc,
			br: bufio.NewReaderSize(nc, 1<<16),
			bw: bufio.NewWriterSize(nc, 1<<16),
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.stats.connOpen()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			c.serve()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// ServeListener serves on a caller-provided listener instead of binding
// the configured address — the hook for wrapping the accept path (e.g.
// internal/netfault's fault-injecting listener, or a TLS listener). The
// server takes ownership: Shutdown closes it.
func (s *Server) ServeListener(ln net.Listener) error {
	// The assignment is fenced by mu because Shutdown (another
	// goroutine) reads s.ln; losing the race to a concurrent Shutdown
	// means the server was stopped before it started — close and exit
	// rather than accepting on a listener nobody will ever close.
	s.mu.Lock()
	s.ln = ln
	draining := s.draining
	s.mu.Unlock()
	if draining {
		ln.Close()
		return nil
	}
	return s.Serve()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains gracefully: stop accepting, fence new requests (they
// are answered StatusOverloaded), flush every lane so already-admitted
// requests complete, then unblock connection readers and wait for them
// up to ctx's deadline. It does not close the blas worker pool — that is
// the process owner's call (cmd/mfserved closes it on exit).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, l := range s.lanes {
		l.drain()
	}
	// Unblock readers parked in Read; draining readers exit on the
	// timeout error instead of treating it as a peer failure.
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.baseCancel()
	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	return err
}

// srvConn is one accepted connection.
type srvConn struct {
	s  *Server
	nc net.Conn
	br *bufio.Reader

	// rArmed/wArmed are when the read/write deadlines were last pushed
	// out. Deadline arming is coarse: SetReadDeadline/SetWriteDeadline go
	// through the runtime poller's timer bookkeeping, which is far too
	// expensive to pay per frame at millions of frames per second, so the
	// deadline is re-armed only once it is stale by a quarter of the
	// budget. A peer that goes silent is therefore cut off after between
	// 0.75× and 1× the configured timeout — the guarantee never loosens.
	rArmed time.Time

	wmu    sync.Mutex
	bw     *bufio.Writer
	wArmed time.Time

	// reds holds this connection's open streaming reductions, keyed by
	// request ID. Only the reader goroutine touches it (reductions
	// execute inline like BLAS ops), so no locking; lazily allocated on
	// the first reduction. See reduce.go.
	reds map[uint64]*reduction
}

// armReadDeadline pushes the read deadline to now+d if the armed one has
// gone stale by more than d/4.
func (c *srvConn) armReadDeadline(d time.Duration) {
	if now := time.Now(); now.Sub(c.rArmed) > d/4 {
		c.rArmed = now
		c.nc.SetReadDeadline(now.Add(d))
	}
}

// armWriteDeadline is armReadDeadline for the write side; callers hold wmu.
func (c *srvConn) armWriteDeadline(d time.Duration) {
	if now := time.Now(); now.Sub(c.wArmed) > d/4 {
		c.wArmed = now
		c.nc.SetWriteDeadline(now.Add(d))
	}
}

func (c *srvConn) serve() {
	defer func() {
		c.s.mu.Lock()
		delete(c.s.conns, c)
		c.s.mu.Unlock()
		c.s.stats.connClose()
		c.nc.Close()
		c.dropAllReductions()
	}()
	for {
		// Arm the idle/stall timeout for the next frame: the deadline
		// covers the whole frame read, so a peer that trickles a frame one
		// byte at a time is bounded exactly like a silent one.
		if d := c.s.cfg.IdleTimeout; d > 0 {
			c.armReadDeadline(d)
		}
		req, err := wire.ReadRequest(c.br)
		if err != nil {
			// EOF and peer resets are normal disconnects; framing errors
			// poison the stream; a checksum mismatch means the bytes cannot
			// be trusted at all. Every case ends the connection — but the
			// recognizable failure classes are counted first.
			switch {
			case errors.Is(err, wire.ErrChecksum):
				c.s.stats.checksumErr()
			case errors.Is(err, wire.ErrMagic), errors.Is(err, wire.ErrVersion),
				errors.Is(err, wire.ErrFrameType), errors.Is(err, wire.ErrTooLarge),
				errors.Is(err, wire.ErrMalformed):
				c.s.stats.protoErr()
			default:
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() && !c.s.isDraining() {
					c.s.stats.idleTimeout()
				}
			}
			return
		}
		c.s.stats.reqIn()
		if c.s.isDraining() {
			c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOverloaded, RetryAfterMs: 1000}, true)
			return
		}
		if err := c.handle(req); err != nil {
			return
		}
	}
}

// handle dispatches one validated-or-rejected request. A non-nil return
// closes the connection.
func (c *srvConn) handle(req *wire.Request) error {
	if err := req.Validate(); err != nil {
		c.s.stats.protoErr()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusBadRequest}, true)
	}
	if max(len(req.X), len(req.Y)) > c.s.cfg.MaxDim*req.Width {
		c.s.stats.protoErr()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusBadRequest}, true)
	}

	ctx := c.s.baseCtx
	cancel := context.CancelFunc(func() {})
	if !req.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, req.Deadline)
	}

	if req.Op.Scalar() {
		p := &pending{
			c: c, id: req.ID, ctx: ctx, cancel: cancel,
			count: req.Count, x: req.X, y: req.Y,
		}
		c.s.lanes[laneKey{req.Op, req.Width}].enqueue(p)
		return nil
	}

	// Streaming reductions fold on the reader goroutine, keeping the
	// per-connection accumulator state single-threaded.
	if req.Op.Reduction() {
		defer cancel()
		return c.handleReduce(ctx, req)
	}

	// BLAS ops are already slab-shaped; execute on this goroutine.
	defer cancel()
	if ctx.Err() != nil {
		c.s.stats.deadline()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusDeadlineExceeded}, true)
	}
	out := execBlas(req, c.s.cfg.Workers)
	if ctx.Err() != nil {
		// Result computed but the deadline passed while computing: the
		// client has given up; honor the contract and fail the request.
		c.s.stats.deadline()
		return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusDeadlineExceeded}, true)
	}
	return c.writeResponse(&wire.Response{ID: req.ID, Status: wire.StatusOK, Data: out}, true)
}

// writeResponse appends resp to the connection's buffered writer and
// optionally flushes. Write errors are swallowed (the reader goroutine
// will observe the broken connection and tear down); the error return
// only signals "stop serving this conn".
func (c *srvConn) writeResponse(resp *wire.Response, flush bool) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if d := c.s.cfg.WriteTimeout; d > 0 {
		c.armWriteDeadline(d)
	}
	if err := wire.WriteResponse(c.bw, resp); err != nil {
		return fmt.Errorf("write response: %w", err)
	}
	c.s.stats.respOut()
	if flush {
		return c.bw.Flush()
	}
	return nil
}

// writeResponses appends a batch's responses for this connection and
// flushes once: one lock hold, one stats update, one syscall for the
// whole group. Write errors are swallowed (the reader goroutine observes
// the broken connection and tears down).
func (c *srvConn) writeResponses(resps []wire.Response) {
	c.wmu.Lock()
	if d := c.s.cfg.WriteTimeout; d > 0 {
		c.armWriteDeadline(d)
	}
	n := 0
	for i := range resps {
		if wire.WriteResponse(c.bw, &resps[i]) != nil {
			break
		}
		n++
	}
	c.bw.Flush()
	c.wmu.Unlock()
	c.s.stats.respOutN(int64(n))
}
