package server

import (
	"bufio"
	"context"
	"math"
	"net"
	"testing"
	"time"

	"multifloats/internal/blas"
	"multifloats/internal/testutil"
	"multifloats/mf"
	"multifloats/serve/wire"
)

// startTestServer returns a running server on a loopback port and a
// cleanup-registered shutdown.
func startTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s
}

type testConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialTest(t *testing.T, s *Server) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { nc.Close() })
	return &testConn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
}

func (c *testConn) send(t *testing.T, req *wire.Request) {
	t.Helper()
	if err := wire.WriteRequest(c.bw, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func (c *testConn) recv(t *testing.T) *wire.Response {
	t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := wire.ReadResponse(c.br)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	return resp
}

// TestBatchCoalescing pins the scheduler's core behavior: pipelined
// compatible scalar requests land in one slab execution, and each result
// matches the in-process mf call bit for bit.
func TestBatchCoalescing(t *testing.T) {
	s := startTestServer(t, Config{BatchWindow: 30 * time.Millisecond, MaxBatch: 64})
	c := dialTest(t, s)

	const k = 10
	xs := make([]mf.Float64x2, k)
	ys := make([]mf.Float64x2, k)
	for i := range xs {
		xs[i] = mf.New2(float64(i + 1)).DivFloat(3)
		ys[i] = mf.New2(float64(i + 2)).DivFloat(7)
	}
	for i := 0; i < k; i++ {
		c.send(t, &wire.Request{
			ID: uint64(i), Op: wire.OpMul, Width: 2, Count: 1,
			X: xs[i][:], Y: ys[i][:],
		})
	}
	got := make(map[uint64][]float64, k)
	for i := 0; i < k; i++ {
		resp := c.recv(t)
		if resp.Status != wire.StatusOK {
			t.Fatalf("resp %d: status %v", resp.ID, resp.Status)
		}
		got[resp.ID] = resp.Data
	}
	for i := 0; i < k; i++ {
		want := xs[i].Mul(ys[i])
		data := got[uint64(i)]
		if len(data) != 2 || math.Float64bits(data[0]) != math.Float64bits(want[0]) ||
			math.Float64bits(data[1]) != math.Float64bits(want[1]) {
			t.Fatalf("req %d: got %v want %v", i, data, want)
		}
	}
	st := s.Stats().Snapshot()
	if st.Batches != 1 || st.BatchedReqs != k {
		t.Fatalf("batches=%d batched_requests=%d, want 1/%d (requests did not coalesce)",
			st.Batches, st.BatchedReqs, k)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain, want 0", st.QueueDepth)
	}
}

// TestMaxBatchFlush: hitting MaxBatch flushes immediately instead of
// waiting out the window.
func TestMaxBatchFlush(t *testing.T) {
	s := startTestServer(t, Config{BatchWindow: 10 * time.Second, MaxBatch: 4})
	c := dialTest(t, s)
	start := time.Now()
	for i := 0; i < 4; i++ {
		c.send(t, &wire.Request{ID: uint64(i), Op: wire.OpAdd, Width: 2, Count: 1,
			X: []float64{1, 0}, Y: []float64{2, 0}})
	}
	for i := 0; i < 4; i++ {
		if resp := c.recv(t); resp.Status != wire.StatusOK {
			t.Fatalf("status %v", resp.Status)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("size-triggered flush took %v; server waited for the window", elapsed)
	}
}

// TestOverloadBackpressure: a full lane queue answers StatusOverloaded
// with a retry hint instead of blocking or dropping silently.
func TestOverloadBackpressure(t *testing.T) {
	s := startTestServer(t, Config{BatchWindow: time.Second, MaxBatch: 1 << 20, QueueDepth: 2})
	c := dialTest(t, s)
	const k = 6
	for i := 0; i < k; i++ {
		c.send(t, &wire.Request{ID: uint64(i), Op: wire.OpAdd, Width: 3, Count: 1,
			X: []float64{1, 0, 0}, Y: []float64{2, 0, 0}})
	}
	overloaded := 0
	for i := 0; i < k; i++ {
		resp := c.recv(t)
		if resp.Status == wire.StatusOverloaded {
			overloaded++
			if resp.RetryAfterMs == 0 {
				t.Fatal("overload response missing retry-after hint")
			}
		}
	}
	if overloaded != k-2 {
		t.Fatalf("overloaded %d of %d, want %d (queue depth 2)", overloaded, k, k-2)
	}
	if got := s.Stats().Overloads.Load(); got != int64(k-2) {
		t.Fatalf("stats.Overloads = %d, want %d", got, k-2)
	}
}

// TestMalformedFrameClosesConn: a framing violation is counted and the
// connection is closed (the stream can no longer be trusted).
func TestMalformedFrameClosesConn(t *testing.T) {
	s := startTestServer(t, Config{})
	c := dialTest(t, s)
	c.nc.Write([]byte("GET / HTTP/1.1\r\n\r\n this is not an mf frame"))
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.nc.Read(buf); err == nil {
		t.Fatal("connection still open after malformed frame")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ProtocolErrors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.Stats().ProtocolErrors.Load(); got == 0 {
		t.Fatal("protocol error not counted")
	}
}

// TestOversizedDimRejected: a structurally valid request beyond MaxDim is
// answered StatusBadRequest rather than executed.
func TestOversizedDimRejected(t *testing.T) {
	s := startTestServer(t, Config{MaxDim: 8})
	c := dialTest(t, s)
	n := 16
	c.send(t, &wire.Request{ID: 1, Op: wire.OpDot, Width: 2, Count: n,
		X: make([]float64, n*2), Y: make([]float64, n*2)})
	if resp := c.recv(t); resp.Status != wire.StatusBadRequest {
		t.Fatalf("status %v, want bad-request", resp.Status)
	}
}

// TestShutdownDrains: requests admitted before Shutdown are executed and
// answered during the drain, not dropped.
func TestShutdownDrains(t *testing.T) {
	// The blas worker pool is process-wide and spawns lazily on first use;
	// warm it so the leak baseline includes it, then everything the server
	// itself started (acceptor, lanes, conn handlers) must be gone after
	// Shutdown.
	blas.Parallel(4, 2, func(lo, hi int) {})
	testutil.VerifyNoLeaks(t)
	cfg := Config{Addr: "127.0.0.1:0", BatchWindow: 10 * time.Second, MaxBatch: 1 << 20}
	s := New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()

	c := dialTest(t, s)
	const k = 5
	for i := 0; i < k; i++ {
		c.send(t, &wire.Request{ID: uint64(i), Op: wire.OpMul, Width: 4, Count: 1,
			X: []float64{3, 0, 0, 0}, Y: []float64{5, 0, 0, 0}})
	}
	// Wait for the requests to be admitted before draining.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().QueueDepth.Load() < k && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for i := 0; i < k; i++ {
		resp := c.recv(t)
		if resp.Status != wire.StatusOK {
			t.Fatalf("drained request %d: status %v", resp.ID, resp.Status)
		}
		if resp.Data[0] != 15 {
			t.Fatalf("drained request %d: got %v", resp.ID, resp.Data)
		}
	}
}
