package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"
)

// crcTable is the Castagnoli polynomial (CRC32C) — hardware-accelerated
// on amd64/arm64, and the standard choice for storage/network integrity.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// bufPool recycles frame scratch buffers. Encode buffers live only for
// the Write call and decode buffers only for the Read call (components
// are copied out into float slices), so pooling them is safe and removes
// the dominant per-frame allocations on a busy connection. Oversized
// buffers (large BLAS frames) are dropped rather than retained.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

const maxPooledBuf = 1 << 16

func getBuf(n int) (*[]byte, []byte) {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp, (*bp)[:n]
}

func putBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		bufPool.Put(bp)
	}
}

// putF64s writes the raw IEEE-754 bit patterns of v at the front of b,
// little-endian, returning the remainder of b. Going through Float64bits
// (not any decimal or shortest-round-trip form) is what makes the
// encoding bit-exact for -0, subnormals, and NaN payloads alike.
//
//mf:hotpath
func putF64s(b []byte, v []float64) []byte {
	for _, f := range v {
		binary.LittleEndian.PutUint64(b, math.Float64bits(f))
		b = b[8:]
	}
	return b
}

// getF64s decodes n float64 components from the front of b and returns
// the remainder of b.
func getF64s(b []byte, n int) ([]float64, []byte) {
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v, b[n*8:]
}

//mf:hotpath
func putHeader(b []byte, frameType byte, payloadLen int, id uint64, extra int64) {
	b[0], b[1] = magic0, magic1
	b[2] = Version
	b[3] = frameType
	binary.LittleEndian.PutUint32(b[4:], uint32(payloadLen))
	binary.LittleEndian.PutUint64(b[8:], id)
	binary.LittleEndian.PutUint64(b[16:], uint64(extra))
}

// readHeader reads and validates a frame header (plus, for requests,
// the fixed payload prefix in the same read — one fewer buffered read
// and CRC update on the hot path), returning the payload length, request
// ID, the type-specific extra field, and the running CRC32C over the
// consumed bytes (the rest of the payload and the trailer continue it).
// h must have length HeaderSize plus however much fixed prefix the
// caller wants consumed together with the header.
func readHeader(r io.Reader, wantType byte, h []byte) (payloadLen int, id uint64, extra int64, crc uint32, err error) {
	if _, err = io.ReadFull(r, h); err != nil {
		return 0, 0, 0, 0, err
	}
	if h[0] != magic0 || h[1] != magic1 {
		return 0, 0, 0, 0, ErrMagic
	}
	if h[2] != Version {
		if h[2] == 1 {
			return 0, 0, 0, 0, fmt.Errorf("%w: peer speaks v1 (no CRC32C trailer); this build requires v%d", ErrVersion, Version)
		}
		return 0, 0, 0, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, h[2], Version)
	}
	if h[3] != wantType {
		return 0, 0, 0, 0, fmt.Errorf("%w: got %d, want %d", ErrFrameType, h[3], wantType)
	}
	n := binary.LittleEndian.Uint32(h[4:])
	if n > MaxPayload {
		return 0, 0, 0, 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	id = binary.LittleEndian.Uint64(h[8:])
	extra = int64(binary.LittleEndian.Uint64(h[16:]))
	return int(n), id, extra, crc32.Update(0, crcTable, h), nil
}

// readTrailer consumes the 4-byte CRC32C trailer and compares it against
// the CRC accumulated over the header and payload.
func readTrailer(r io.Reader, crc uint32) error {
	var tr [TrailerSize]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != crc {
		return fmt.Errorf("%w: trailer %08x, computed %08x", ErrChecksum, got, crc)
	}
	return nil
}

// sealFrame appends the CRC32C trailer over buf's header+payload bytes.
// buf must have TrailerSize spare bytes after n.
//
//mf:hotpath
func sealFrame(buf []byte, n int) {
	binary.LittleEndian.PutUint32(buf[n:], crc32.Checksum(buf[:n], crcTable))
}

// deadlineNanos converts a deadline to the wire representation: absolute
// Unix nanoseconds, 0 for "none".
func deadlineNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

const reqFixed = 12 // op, width, proxy hops, reserved, count, m

// WriteRequest encodes r as a single frame. The caller is responsible
// for r being well-shaped (Validate); WriteRequest trusts the slab
// lengths it is given.
func WriteRequest(w io.Writer, r *Request) error {
	payload := reqFixed + 8*(len(r.Alpha)+len(r.X)+len(r.Y))
	if payload > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, payload)
	}
	if uint(r.Hops) > MaxProxyHops {
		// Checked at write time too (not just Validate): a hop count that
		// does not fit the wire byte must never be silently truncated into
		// a plausible one.
		return fmt.Errorf("%w: proxy hop count %d exceeds MaxProxyHops %d", ErrMalformed, r.Hops, MaxProxyHops)
	}
	bp, buf := getBuf(HeaderSize + payload + TrailerSize)
	defer putBuf(bp)
	putHeader(buf, frameRequest, payload, r.ID, deadlineNanos(r.Deadline))
	p := buf[HeaderSize:]
	p[0], p[1], p[2], p[3] = byte(r.Op), byte(r.Width), byte(r.Hops), 0
	binary.LittleEndian.PutUint32(p[4:], uint32(r.Count))
	binary.LittleEndian.PutUint32(p[8:], uint32(r.M))
	p = putF64s(p[reqFixed:], r.Alpha)
	p = putF64s(p, r.X)
	putF64s(p, r.Y)
	sealFrame(buf, HeaderSize+payload)
	_, err := w.Write(buf)
	return err
}

// ReadRequest decodes one request frame. A returned error (other than a
// clean io.EOF before any bytes) means the stream is no longer aligned
// on frame boundaries and the connection should be closed.
func ReadRequest(r io.Reader) (*Request, error) {
	// Read the header and the fixed payload prefix together and derive the
	// slab sizes from the prefix, so the body allocation is bounded by the
	// request's validated geometry rather than the header's claimed length
	// — a small frame with a hostile length field cannot pin MaxPayload of
	// memory. (Every well-formed request payload is ≥ reqFixed bytes, so
	// the merged read never crosses a frame boundary for an honest peer;
	// a malformed shorter claim errors below and closes the connection.)
	var hf [HeaderSize + reqFixed]byte
	payloadLen, id, dl, crc, err := readHeader(r, frameRequest, hf[:])
	if err != nil {
		return nil, err
	}
	if payloadLen < reqFixed {
		return nil, fmt.Errorf("%w: request payload %d bytes, want ≥ %d", ErrMalformed, payloadLen, reqFixed)
	}
	fixed := hf[HeaderSize:]
	req := &Request{
		ID:    id,
		Op:    Op(fixed[0]),
		Width: int(fixed[1]),
		Hops:  int(fixed[2]),
		Count: int(binary.LittleEndian.Uint32(fixed[4:])),
		M:     int(binary.LittleEndian.Uint32(fixed[8:])),
	}
	if dl != 0 {
		req.Deadline = time.Unix(0, dl)
	}
	nx, ny, na, err := ReqElems(req.Op, req.Width, req.Count, req.M)
	if err != nil {
		return nil, err
	}
	if want := reqFixed + 8*(na+nx+ny); want != payloadLen {
		return nil, fmt.Errorf("%w: %s payload %d bytes, want %d", ErrMalformed, req.Op, payloadLen, want)
	}
	bp, body := getBuf(payloadLen - reqFixed)
	defer putBuf(bp)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	// Verify the trailer before decoding a single component: a corrupted
	// frame must never yield a plausible request.
	if err := readTrailer(r, crc32.Update(crc, crcTable, body)); err != nil {
		return nil, err
	}
	req.Alpha, body = getF64s(body, na)
	req.X, body = getF64s(body, nx)
	req.Y, _ = getF64s(body, ny)
	return req, nil
}

const respFixed = 8 // status, reserved×3, retry-after

// WriteResponse encodes resp as a single frame.
func WriteResponse(w io.Writer, resp *Response) error {
	payload := respFixed + 8*len(resp.Data)
	if payload > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, payload)
	}
	bp, buf := getBuf(HeaderSize + payload + TrailerSize)
	defer putBuf(bp)
	putHeader(buf, frameResponse, payload, resp.ID, 0)
	p := buf[HeaderSize:]
	p[0], p[1], p[2], p[3] = byte(resp.Status), 0, 0, 0
	binary.LittleEndian.PutUint32(p[4:], resp.RetryAfterMs)
	putF64s(p[respFixed:], resp.Data)
	sealFrame(buf, HeaderSize+payload)
	_, err := w.Write(buf)
	return err
}

// ReadResponse decodes one response frame.
func ReadResponse(r io.Reader) (*Response, error) {
	var h [HeaderSize]byte
	payloadLen, id, _, crc, err := readHeader(r, frameResponse, h[:])
	if err != nil {
		return nil, err
	}
	if payloadLen < respFixed || (payloadLen-respFixed)%8 != 0 {
		return nil, fmt.Errorf("%w: response payload %d bytes", ErrMalformed, payloadLen)
	}
	bp, body := getBuf(payloadLen)
	defer putBuf(bp)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	// Verify before decoding: a corrupted frame must never yield a
	// plausible response.
	if err := readTrailer(r, crc32.Update(crc, crcTable, body)); err != nil {
		return nil, err
	}
	resp := &Response{
		ID:           id,
		Status:       Status(body[0]),
		RetryAfterMs: binary.LittleEndian.Uint32(body[4:]),
	}
	resp.Data, _ = getF64s(body[respFixed:], (payloadLen-respFixed)/8)
	return resp, nil
}
