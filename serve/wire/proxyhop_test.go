package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// reseal recomputes the CRC32C trailer after a test has doctored frame
// bytes, so the hostile value under test reaches the semantic layer
// instead of bouncing off the integrity check.
func reseal(frame []byte) {
	n := len(frame) - TrailerSize
	binary.LittleEndian.PutUint32(frame[n:], crc32.Checksum(frame[:n], crc32.MakeTable(crc32.Castagnoli)))
}

func validHopFrame(t *testing.T, hops int) []byte {
	t.Helper()
	var buf bytes.Buffer
	req := &Request{ID: 21, Op: OpAdd, Width: 2, Count: 1, Hops: hops,
		X: []float64{1, 0}, Y: []float64{2, 0}}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	return buf.Bytes()
}

// TestProxyHopRoundTrip pins the hop byte through encode/decode at every
// legal value, and that Validate accepts all of them.
func TestProxyHopRoundTrip(t *testing.T) {
	for hops := 0; hops <= MaxProxyHops; hops++ {
		got, err := ReadRequest(bytes.NewReader(validHopFrame(t, hops)))
		if err != nil {
			t.Fatalf("hops=%d: ReadRequest: %v", hops, err)
		}
		if got.Hops != hops {
			t.Fatalf("hops=%d: decoded %d", hops, got.Hops)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("hops=%d: Validate: %v", hops, err)
		}
	}
}

// TestProxyHopWriteBound: a writer-side hop count that does not fit the
// contract must fail loudly, never truncate into a plausible byte.
func TestProxyHopWriteBound(t *testing.T) {
	for _, hops := range []int{MaxProxyHops + 1, 255, 256, 1000, -1} {
		var buf bytes.Buffer
		req := &Request{ID: 1, Op: OpAdd, Width: 2, Count: 1, Hops: hops,
			X: []float64{1, 0}, Y: []float64{2, 0}}
		if err := WriteRequest(&buf, req); !errors.Is(err, ErrMalformed) {
			t.Fatalf("hops=%d: WriteRequest err = %v, want ErrMalformed", hops, err)
		}
	}
}

// TestProxyHopHostileFrame doctors the hop byte of an otherwise valid,
// correctly CRC-sealed frame to loop-evident values: the frame decodes
// (hops is semantic, not framing) and Validate rejects it — which is the
// path a server takes to answer StatusBadRequest instead of forwarding a
// request around a proxy cycle forever.
func TestProxyHopHostileFrame(t *testing.T) {
	for _, hostile := range []byte{MaxProxyHops + 1, 7, 200, 255} {
		frame := validHopFrame(t, 0)
		frame[HeaderSize+2] = hostile
		reseal(frame)
		got, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("hop byte %d: ReadRequest: %v", hostile, err)
		}
		if got.Hops != int(hostile) {
			t.Fatalf("hop byte %d: decoded %d", hostile, got.Hops)
		}
		if err := got.Validate(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("hop byte %d: Validate err = %v, want ErrMalformed", hostile, err)
		}
	}
}

// TestProxyHopCorruptionCaught: without the reseal, flipping the hop
// byte is transport corruption and must die at the CRC check, so a loop
// count can never be forged in flight.
func TestProxyHopCorruptionCaught(t *testing.T) {
	frame := validHopFrame(t, 1)
	frame[HeaderSize+2] = 200
	if _, err := ReadRequest(bytes.NewReader(frame)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

// TestReduceRawFlagValidation pins the raw-final contract: raw+final is
// valid and sized ReduceRawElems; raw without final, and any unknown
// flag bit, are malformed.
func TestReduceRawFlagValidation(t *testing.T) {
	mk := func(m int) *Request {
		return &Request{ID: 1, Op: OpSumExact, Width: 2, Count: 1, M: m,
			X: []float64{1, 0}}
	}
	if err := mk(FlagReduceFinal | FlagReduceRaw).Validate(); err != nil {
		t.Fatalf("raw final: Validate: %v", err)
	}
	if got := RespElems(OpSumExact, 2, 1, FlagReduceFinal|FlagReduceRaw); got != ReduceRawElems {
		t.Fatalf("raw final RespElems = %d, want %d", got, ReduceRawElems)
	}
	if got := RespElems(OpDotExact, 3, 1, FlagReduceFinal); got != 3 {
		t.Fatalf("rounded final RespElems = %d, want width", got)
	}
	if err := mk(FlagReduceRaw).Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("raw without final: Validate err = %v, want ErrMalformed", err)
	}
	if err := mk(FlagReduceFinal | 4).Validate(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown flag bit: Validate err = %v, want ErrMalformed", err)
	}
	// Raw final round-trips like any other reduction frame.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, mk(FlagReduceFinal|FlagReduceRaw)); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if got.M != FlagReduceFinal|FlagReduceRaw {
		t.Fatalf("M = %#x", got.M)
	}
}
