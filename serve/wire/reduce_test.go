package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// Reduction-specific wire geometry and hostile-frame coverage, mirroring
// the scalar/BLAS Validate suite: the streaming ops relax the width
// floor to 1 and reuse M as a flags word, and both relaxations must stay
// confined to OpSumExact/OpDotExact.

func TestReductionValidate(t *testing.T) {
	comps := func(n int) []float64 { return make([]float64, n) }
	t.Run("accepts", func(t *testing.T) {
		for w := 1; w <= 4; w++ {
			for _, m := range []int{0, FlagReduceFinal} {
				sum := Request{Op: OpSumExact, Width: w, Count: 3, M: m, X: comps(3 * w)}
				if err := sum.Validate(); err != nil {
					t.Errorf("sumexact w=%d m=%d: %v", w, m, err)
				}
				dot := Request{Op: OpDotExact, Width: w, Count: 3, M: m, X: comps(3 * w), Y: comps(3 * w)}
				if err := dot.Validate(); err != nil {
					t.Errorf("dotexact w=%d m=%d: %v", w, m, err)
				}
			}
		}
		// Empty chunks (and empty whole reductions) are valid.
		empty := Request{Op: OpSumExact, Width: 2, Count: 0, M: FlagReduceFinal}
		if err := empty.Validate(); err != nil {
			t.Errorf("empty reduction: %v", err)
		}
	})
	t.Run("rejects", func(t *testing.T) {
		for _, c := range []struct {
			name string
			r    Request
		}{
			{"width-5", Request{Op: OpSumExact, Width: 5, Count: 1, X: comps(5)}},
			{"width-0", Request{Op: OpSumExact, Width: 0, Count: 1}},
			{"unknown-flag", Request{Op: OpSumExact, Width: 2, Count: 1, M: 2, X: comps(2)}},
			{"unknown-flag-over-final", Request{Op: OpDotExact, Width: 2, Count: 1, M: FlagReduceFinal | 4, X: comps(2), Y: comps(2)}},
			{"sum-with-y", Request{Op: OpSumExact, Width: 2, Count: 1, X: comps(2), Y: comps(2)}},
			{"dot-missing-y", Request{Op: OpDotExact, Width: 2, Count: 1, X: comps(2)}},
			{"count-slab-mismatch", Request{Op: OpSumExact, Width: 3, Count: 4, X: comps(6)}},
			{"alpha-on-reduction", Request{Op: OpSumExact, Width: 2, Count: 1, X: comps(2), Alpha: comps(2)}},
			// The width-1 relaxation must not leak to non-reduction ops.
			{"width-1-add", Request{Op: OpAdd, Width: 1, Count: 2, X: comps(2), Y: comps(2)}},
			{"width-1-dot", Request{Op: OpDot, Width: 1, Count: 2, X: comps(2), Y: comps(2)}},
			// Nor the flags-word reuse: M stays zero for scalar ops.
			{"flag-on-add", Request{Op: OpAdd, Width: 2, Count: 1, M: FlagReduceFinal, X: comps(2), Y: comps(2)}},
		} {
			if err := c.r.Validate(); !errors.Is(err, ErrMalformed) {
				t.Errorf("%s: Validate = %v, want ErrMalformed", c.name, err)
			}
		}
	})
}

// TestReductionRoundTrip: chunk and final frames survive encode/decode
// with flags, geometry, and payload bits intact.
func TestReductionRoundTrip(t *testing.T) {
	x := []float64{1.5, -2.25, 3.0, 0.125, -0.5, 42.0}
	for _, req := range []*Request{
		{ID: 101, Op: OpSumExact, Width: 1, Count: 6, X: x},
		{ID: 102, Op: OpSumExact, Width: 3, Count: 2, M: FlagReduceFinal, X: x},
		{ID: 103, Op: OpDotExact, Width: 2, Count: 3, X: x, Y: x},
		{ID: 104, Op: OpDotExact, Width: 1, Count: 6, M: FlagReduceFinal, X: x, Y: x},
	} {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("id %d: WriteRequest: %v", req.ID, err)
		}
		back, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("id %d: ReadRequest: %v", req.ID, err)
		}
		if back.ID != req.ID || back.Op != req.Op || back.Width != req.Width ||
			back.Count != req.Count || back.M != req.M {
			t.Fatalf("id %d: round trip mutated shape: %+v", req.ID, back)
		}
		if len(back.X) != len(req.X) || len(back.Y) != len(req.Y) {
			t.Fatalf("id %d: round trip mutated slabs: x=%d y=%d", req.ID, len(back.X), len(back.Y))
		}
	}
}

// TestReductionHostileCounts crafts raw reduction frames with counts
// whose slab sizes wrap or exceed the frame: rejected as malformed, no
// panic, no giant allocation.
func TestReductionHostileCounts(t *testing.T) {
	craft := func(op Op, width byte, count, m uint32) []byte {
		b := make([]byte, HeaderSize+reqFixed)
		b[0], b[1], b[2], b[3] = magic0, magic1, Version, frameRequest
		binary.LittleEndian.PutUint32(b[4:], reqFixed)
		b[HeaderSize] = byte(op)
		b[HeaderSize+1] = width
		binary.LittleEndian.PutUint32(b[HeaderSize+4:], count)
		binary.LittleEndian.PutUint32(b[HeaderSize+8:], m)
		return b
	}
	for _, c := range []struct {
		name  string
		frame []byte
	}{
		{"sumexact-count-wrap", craft(OpSumExact, 4, 0xFFFFFFFF, 0)},
		{"sumexact-over-frame", craft(OpSumExact, 1, 1<<30, uint32(FlagReduceFinal))},
		{"dotexact-over-frame", craft(OpDotExact, 4, 1<<28, 0)},
		{"sumexact-hostile-flags", craft(OpSumExact, 2, 1, 0xFFFF)},
	} {
		if _, err := ReadRequest(bytes.NewReader(c.frame)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", c.name, err)
		}
	}
}

// TestReductionRespElems pins the ack-vs-result geometry: only the
// final-flagged chunk carries data.
func TestReductionRespElems(t *testing.T) {
	for w := 1; w <= 4; w++ {
		if got := RespElems(OpSumExact, w, 99, 0); got != 0 {
			t.Errorf("sumexact chunk ack w=%d: RespElems = %d, want 0", w, got)
		}
		if got := RespElems(OpSumExact, w, 99, FlagReduceFinal); got != w {
			t.Errorf("sumexact final w=%d: RespElems = %d, want %d", w, got, w)
		}
		if got := RespElems(OpDotExact, w, 0, FlagReduceFinal); got != w {
			t.Errorf("dotexact final w=%d: RespElems = %d, want %d", w, got, w)
		}
	}
}

func TestReductionOpParse(t *testing.T) {
	for _, op := range []Op{OpSumExact, OpDotExact} {
		if !op.Valid() || !op.Reduction() {
			t.Fatalf("%v: Valid=%v Reduction=%v", op, op.Valid(), op.Reduction())
		}
		back, err := ParseOp(op.String())
		if err != nil || back != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), back, err)
		}
	}
	for _, op := range []Op{OpAdd, OpDot, OpGemm} {
		if op.Reduction() {
			t.Fatalf("%v wrongly classified as reduction", op)
		}
	}
}
