package wire

import (
	"bytes"
	"math"
	"testing"
	"time"

	"multifloats/internal/diffuzz"
	"multifloats/mf"
)

// Property test: every encodable expansion survives encode→frame→decode
// bit-exactly. The operand streams come from internal/diffuzz's
// adversarial generators — in-threshold cancellation ladders, edge
// expansions (subnormal terms, near-overflow leads, huge inter-term
// gaps, -0 tails from negative residues), and the §4.4 special leading
// values (NaN, ±Inf, -0) — so the wire layer is exercised on exactly the
// inputs the conformance harness knows to be hard.

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestWireRoundTripProperty(t *testing.T) {
	g := diffuzz.NewGen(0x31337)
	// Unary, binary, and atan2 math shapes ride the Scalar arm below.
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpSqrt, OpAxpy, OpDot, OpGemm,
		OpExp, OpSin, OpCbrt, OpPow, OpAtan2, OpHypot}
	var buf bytes.Buffer

	for iter := 0; iter < 4000; iter++ {
		width := 2 + iter%3
		op := ops[iter%len(ops)]

		// Mix the three generator regimes, plus special leading values.
		draw := func() []float64 {
			switch iter % 4 {
			case 0:
				return g.Expansion(width, 300)
			case 1:
				return g.EdgeExpansion(width)
			case 2:
				x := g.Expansion(width, 60)
				x[0] = g.SpecialValue()
				return x
			default:
				x := g.EdgeExpansion(width)
				// Force a -0 tail term, the PR-2 encoding regression.
				x[width-1] = math.Copysign(0, -1)
				return x
			}
		}

		count := 1 + iter%5
		var req Request
		switch {
		case op.Scalar():
			req = Request{Op: op, Width: width, Count: count}
			for i := 0; i < count; i++ {
				req.X = append(req.X, draw()...)
				if !op.Unary() {
					req.Y = append(req.Y, draw()...)
				}
			}
		case op == OpAxpy || op == OpDot:
			req = Request{Op: op, Width: width, Count: count}
			for i := 0; i < count; i++ {
				req.X = append(req.X, draw()...)
				req.Y = append(req.Y, draw()...)
			}
			if op == OpAxpy {
				req.Alpha = draw()
			}
		case op == OpGemm:
			req = Request{Op: op, Width: width, Count: count}
			for i := 0; i < count*count; i++ {
				req.X = append(req.X, draw()...)
				req.Y = append(req.Y, draw()...)
			}
		}
		req.ID = uint64(iter)
		if iter%3 == 0 {
			req.Deadline = time.Unix(0, int64(1e18)+int64(iter))
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("iter %d: generated invalid request: %v", iter, err)
		}

		buf.Reset()
		if err := WriteRequest(&buf, &req); err != nil {
			t.Fatalf("iter %d: WriteRequest: %v", iter, err)
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("iter %d: ReadRequest: %v", iter, err)
		}
		if !bitsEqual(got.X, req.X) || !bitsEqual(got.Y, req.Y) || !bitsEqual(got.Alpha, req.Alpha) {
			t.Fatalf("iter %d: %s width=%d: slab not bit-identical after round trip", iter, op, width)
		}
		if !got.Deadline.Equal(req.Deadline) {
			t.Fatalf("iter %d: deadline %v → %v", iter, req.Deadline, got.Deadline)
		}

		// Responses carry the same component encoding; spot-check with the
		// X slab as payload.
		buf.Reset()
		resp := Response{ID: req.ID, Status: StatusOK, Data: req.X}
		if err := WriteResponse(&buf, &resp); err != nil {
			t.Fatalf("iter %d: WriteResponse: %v", iter, err)
		}
		rgot, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("iter %d: ReadResponse: %v", iter, err)
		}
		if !bitsEqual(rgot.Data, resp.Data) {
			t.Fatalf("iter %d: response data not bit-identical", iter)
		}
	}
}

// TestPackUnpackBitExact pins the slab reshapes as lossless, including on
// special values.
func TestPackUnpackBitExact(t *testing.T) {
	g := diffuzz.NewGen(7)
	v2 := make([]mf.Float64x2, 64)
	v3 := make([]mf.Float64x3, 64)
	v4 := make([]mf.Float64x4, 64)
	for i := range v2 {
		copy(v2[i][:], g.EdgeExpansion(2))
		copy(v3[i][:], g.EdgeExpansion(3))
		copy(v4[i][:], g.EdgeExpansion(4))
		if i%8 == 0 {
			v2[i][0] = g.SpecialValue()
			v3[i][1] = math.Copysign(0, -1)
			v4[i][3] = g.SpecialValue()
		}
	}
	for i, got := range Unpack2(Pack2(v2)) {
		if math.Float64bits(got[0]) != math.Float64bits(v2[i][0]) ||
			math.Float64bits(got[1]) != math.Float64bits(v2[i][1]) {
			t.Fatalf("Unpack2(Pack2) not bit-exact at %d", i)
		}
	}
	for i, got := range Unpack3(Pack3(v3)) {
		for k := 0; k < 3; k++ {
			if math.Float64bits(got[k]) != math.Float64bits(v3[i][k]) {
				t.Fatalf("Unpack3(Pack3) not bit-exact at %d[%d]", i, k)
			}
		}
	}
	for i, got := range Unpack4(Pack4(v4)) {
		for k := 0; k < 4; k++ {
			if math.Float64bits(got[k]) != math.Float64bits(v4[i][k]) {
				t.Fatalf("Unpack4(Pack4) not bit-exact at %d[%d]", i, k)
			}
		}
	}
}
