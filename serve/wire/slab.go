package wire

import "multifloats/mf"

// Slab conversions between mf expansion slices and the flat component
// slabs that travel on the wire. Component order is the expansion's own
// (leading term first), so packing is a pure reshape — no rounding, no
// bit changes. Both the server's executor and the client's typed API go
// through these.

// Pack2 flattens 2-term expansions into a component slab.
func Pack2(v []mf.Float64x2) []float64 {
	s := make([]float64, 2*len(v))
	for i, e := range v {
		s[2*i], s[2*i+1] = e[0], e[1]
	}
	return s
}

// Unpack2 reshapes a component slab into 2-term expansions.
func Unpack2(s []float64) []mf.Float64x2 {
	v := make([]mf.Float64x2, len(s)/2)
	for i := range v {
		v[i] = mf.Float64x2{s[2*i], s[2*i+1]}
	}
	return v
}

// Pack3 flattens 3-term expansions into a component slab.
func Pack3(v []mf.Float64x3) []float64 {
	s := make([]float64, 3*len(v))
	for i, e := range v {
		s[3*i], s[3*i+1], s[3*i+2] = e[0], e[1], e[2]
	}
	return s
}

// Unpack3 reshapes a component slab into 3-term expansions.
func Unpack3(s []float64) []mf.Float64x3 {
	v := make([]mf.Float64x3, len(s)/3)
	for i := range v {
		v[i] = mf.Float64x3{s[3*i], s[3*i+1], s[3*i+2]}
	}
	return v
}

// Pack4 flattens 4-term expansions into a component slab.
func Pack4(v []mf.Float64x4) []float64 {
	s := make([]float64, 4*len(v))
	for i, e := range v {
		s[4*i], s[4*i+1], s[4*i+2], s[4*i+3] = e[0], e[1], e[2], e[3]
	}
	return s
}

// Unpack4 reshapes a component slab into 4-term expansions.
func Unpack4(s []float64) []mf.Float64x4 {
	v := make([]mf.Float64x4, len(s)/4)
	for i := range v {
		v[i] = mf.Float64x4{s[4*i], s[4*i+1], s[4*i+2], s[4*i+3]}
	}
	return v
}
