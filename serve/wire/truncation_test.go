package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// truncationFrames is one well-formed frame per interesting shape: every
// op family (binary scalar, unary scalar, axpy with alpha, dot, gemv
// with distinct n/m, gemm) plus the response variants (OK with data,
// overloaded with retry hint, empty deadline-miss).
func truncationFrames(t *testing.T) map[string][]byte {
	t.Helper()
	comps := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i) + 0.5
		}
		return v
	}
	reqs := map[string]*Request{
		"req-add-w2": {ID: 7, Op: OpAdd, Width: 2, Count: 3,
			X: comps(6), Y: comps(6)},
		"req-sqrt-w3": {ID: 8, Op: OpSqrt, Width: 3, Count: 2,
			X: comps(6), Deadline: time.Unix(0, 1234567890)},
		"req-axpy-w4": {ID: 9, Op: OpAxpy, Width: 4, Count: 2,
			Alpha: comps(4), X: comps(8), Y: comps(8)},
		"req-dot-w2": {ID: 10, Op: OpDot, Width: 2, Count: 4,
			X: comps(8), Y: comps(8)},
		"req-gemv-w2": {ID: 11, Op: OpGemv, Width: 2, Count: 2, M: 3,
			X: comps(12), Y: comps(6)},
		"req-gemm-w3": {ID: 12, Op: OpGemm, Width: 3, Count: 2,
			X: comps(12), Y: comps(12)},
		// Streaming reductions: a non-final chunk, a final (flagged) chunk,
		// and the width-1 plain-float64 form only reductions allow.
		"req-sumexact-w1-chunk": {ID: 13, Op: OpSumExact, Width: 1, Count: 5,
			X: comps(5)},
		"req-sumexact-w3-final": {ID: 14, Op: OpSumExact, Width: 3, Count: 2,
			M: FlagReduceFinal, X: comps(6)},
		"req-dotexact-w1-final": {ID: 15, Op: OpDotExact, Width: 1, Count: 4,
			M: FlagReduceFinal, X: comps(4), Y: comps(4)},
		"req-dotexact-w4-chunk": {ID: 16, Op: OpDotExact, Width: 4, Count: 2,
			X: comps(8), Y: comps(8)},
		// Transcendental shapes: a unary math op, a binary one (distinct
		// X/Y slabs), and atan2 whose X slab is the y-coordinate operand.
		"req-exp-w2": {ID: 20, Op: OpExp, Width: 2, Count: 3,
			X: comps(6)},
		"req-pow-w4": {ID: 21, Op: OpPow, Width: 4, Count: 2,
			X: comps(8), Y: comps(8)},
		"req-atan2-w3": {ID: 22, Op: OpAtan2, Width: 3, Count: 2,
			X: comps(6), Y: comps(6), Deadline: time.Unix(0, 987654321)},
		// Proxy-era shapes: a forwarded request carrying a nonzero hop
		// count, and a raw-accumulator final chunk (the shard-merge form).
		"req-add-w2-hops": {ID: 17, Op: OpAdd, Width: 2, Count: 3,
			Hops: MaxProxyHops, X: comps(6), Y: comps(6)},
		"req-sumexact-w2-rawfinal": {ID: 18, Op: OpSumExact, Width: 2, Count: 2,
			M: FlagReduceFinal | FlagReduceRaw, X: comps(4)},
	}
	resps := map[string]*Response{
		"resp-ok":         {ID: 7, Status: StatusOK, Data: comps(6)},
		"resp-overloaded": {ID: 8, Status: StatusOverloaded, RetryAfterMs: 25},
		"resp-deadline":   {ID: 9, Status: StatusDeadlineExceeded},
	}
	frames := make(map[string][]byte, len(reqs)+len(resps))
	for name, r := range reqs {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatalf("%s: WriteRequest: %v", name, err)
		}
		frames[name] = buf.Bytes()
	}
	for name, r := range resps {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, r); err != nil {
			t.Fatalf("%s: WriteResponse: %v", name, err)
		}
		frames[name] = buf.Bytes()
	}
	return frames
}

// readFrame dispatches to the decoder matching the frame's name prefix.
func readFrame(name string, b []byte) (any, error) {
	if strings.HasPrefix(name, "req-") {
		return ReadRequest(bytes.NewReader(b))
	}
	return ReadResponse(bytes.NewReader(b))
}

// TestTruncationAtEveryByte cuts every frame shape at every possible
// byte boundary and asserts the decoder fails loudly at each one — a
// clean EOF/unexpected-EOF/malformed error, never a panic, and never a
// zero-value "success" that could be mistaken for a real frame.
func TestTruncationAtEveryByte(t *testing.T) {
	for name, frame := range truncationFrames(t) {
		t.Run(name, func(t *testing.T) {
			// Sanity: the untruncated frame must decode.
			if v, err := readFrame(name, frame); err != nil || v == nil {
				t.Fatalf("full frame: got %v, err %v", v, err)
			}
			for cut := 0; cut < len(frame); cut++ {
				v, err := decodeTruncated(t, name, frame[:cut])
				if err == nil {
					t.Fatalf("cut at %d/%d: decoded %#v from a truncated frame", cut, len(frame), v)
				}
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrMalformed) {
					t.Fatalf("cut at %d/%d: err = %v, want EOF, unexpected-EOF, or ErrMalformed", cut, len(frame), err)
				}
			}
		})
	}
}

// decodeTruncated runs the decoder on a truncated frame, converting a
// panic into a test failure with the offending cut recorded.
func decodeTruncated(t *testing.T, name string, b []byte) (v any, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decoder panicked on %d-byte truncation: %v", len(b), r)
		}
	}()
	return readFrame(name, b)
}

// TestTruncationMidStream verifies the second frame on a connection is
// also covered: a whole valid frame followed by a truncated one fails on
// the second read, after the first decodes cleanly.
func TestTruncationMidStream(t *testing.T) {
	var buf bytes.Buffer
	first := &Request{ID: 1, Op: OpMul, Width: 2, Count: 1, X: []float64{3, 0}, Y: []float64{5, 0}}
	if err := WriteRequest(&buf, first); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	second := &Request{ID: 2, Op: OpDot, Width: 2, Count: 2, X: make([]float64, 4), Y: make([]float64, 4)}
	if err := WriteRequest(&buf, second); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes()[:whole+HeaderSize+4]) // second frame cut mid-payload
	if req, err := ReadRequest(r); err != nil || req.ID != 1 {
		t.Fatalf("first frame: %v, %v", req, err)
	}
	if req, err := ReadRequest(r); err == nil {
		t.Fatalf("second (truncated) frame decoded: %#v", req)
	} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrMalformed) {
		t.Fatalf("second frame err = %v", err)
	}
}
