// Package wire is the binary protocol of the mfserve compute service: a
// compact, versioned framing for extended-precision expansion values and
// the request/response pairs of the scalar arithmetic (Add/Sub/Mul/Div/
// Sqrt), transcendental (Exp..Hypot — see the Op block), and BLAS
// (Axpy/Dot/Gemv/Gemm) operations at widths 2, 3, and 4.
//
// Expansion components travel as their raw IEEE-754 bit patterns
// (little-endian uint64 per float64 component), so a decode(encode(x))
// round trip is bit-exact for every representable expansion — including
// -0 tail terms, subnormals, and the NaN/Inf collapse states of the §4.4
// special-value contract. The wire base type is float64 (the serving
// tier's configuration); float32 expansions are a client-side concern.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       2     magic "MF"
//	2       1     version (2)
//	3       1     frame type (1 = request, 2 = response)
//	4       4     payload length in bytes (trailer not included)
//	8       8     request ID
//	16      8     request: absolute deadline, Unix nanoseconds (0 = none)
//	              response: reserved (0)
//	24      —     payload
//	24+len  4     CRC32C (Castagnoli) of header + payload
//
// Version 2 added the CRC32C trailer. Every frame is integrity-checked
// end to end: a flipped bit anywhere in the header or payload makes the
// trailer mismatch, the decoder returns ErrChecksum, and the connection
// is closed — a corrupted frame can never decode into a plausible
// request or response, so the arithmetic error bounds the service
// advertises are never silently voided by the transport. Version 1
// frames (no trailer) are rejected with ErrVersion; there is no
// downgrade path.
//
// Request payload:
//
//	0       1     op
//	1       1     width (2, 3, or 4; reductions also allow 1)
//	2       1     proxy hop count (0 for a direct client; each proxy
//	              tier increments it; > MaxProxyHops is rejected, so a
//	              misconfigured proxy loop dies at the first wrap)
//	3       1     reserved (0)
//	4       4     count (elements / vector length / matrix dimension n)
//	8       4     m     (GEMV column count; reduction flags; 0 otherwise)
//	12      —     Axpy only: alpha, width components
//	…       —     X slab, then Y slab (see ReqElems for sizes)
//
// Response payload:
//
//	0       1     status
//	1       3     reserved (0)
//	4       4     retry-after hint, milliseconds (Overloaded only)
//	8       —     result slab (see RespElems for size)
package wire

import (
	"errors"
	"fmt"
	"time"
)

// Protocol constants.
const (
	Version    = 2
	HeaderSize = 24
	// TrailerSize is the CRC32C trailer appended after the payload.
	TrailerSize = 4

	// MaxPayload bounds a frame's payload so a corrupt or hostile length
	// field cannot trigger an arbitrary allocation. 1 GiB admits GEMM up
	// to n≈2048 at width 4 with both operand matrices in one frame.
	MaxPayload = 1 << 30

	magic0, magic1 = 'M', 'F'

	frameRequest  = 1
	frameResponse = 2
)

// Op identifies the requested operation. Scalar ops apply elementwise to
// `count` operand expansions; BLAS ops carry whole vectors or matrices.
type Op uint8

const (
	OpAdd  Op = 1
	OpSub  Op = 2
	OpMul  Op = 3
	OpDiv  Op = 4
	OpSqrt Op = 5

	OpAxpy Op = 16
	OpDot  Op = 17
	OpGemv Op = 18
	OpGemm Op = 19

	// Transcendental elementwise ops (mf/math.go). Like the arithmetic
	// scalar ops they apply to `count` operand expansions and are
	// batching-eligible; unlike them they dispatch to the scalar mf
	// kernels rather than the generated lane networks. The §4.4 collapse
	// contract travels unchanged: non-finite operands (and domain
	// violations) yield NaN expansions, bit-identical to a local call.
	// OpAtan2's X slab is the y-coordinate operand, matching Atan2(y, x);
	// OpPow's X slab is the base.
	OpExp   Op = 48
	OpExpm1 Op = 49
	OpExp2  Op = 50
	OpLog   Op = 51
	OpLog1p Op = 52
	OpLog2  Op = 53
	OpLog10 Op = 54
	OpSin   Op = 55
	OpCos   Op = 56
	OpTan   Op = 57
	OpAsin  Op = 58
	OpAcos  Op = 59
	OpAtan  Op = 60
	OpSinh  Op = 61
	OpCosh  Op = 62
	OpTanh  Op = 63
	OpCbrt  Op = 64
	OpPow   Op = 65
	OpAtan2 Op = 66
	OpHypot Op = 67

	// Streaming reductions (exact superaccumulator — internal/exact).
	// A reduction is a sequence of request frames sharing one request ID
	// on one connection: the server folds each operand chunk into a
	// per-(connection, ID) accumulator and acknowledges it with an empty
	// StatusOK response; the frame carrying FlagReduceFinal in M also
	// folds its chunk, then returns the correctly rounded width-w result
	// and releases the state. The accumulator is exact and
	// merge-associative, so the result is bit-identical for every chunk
	// split, chunk order, and server-side worker count. Reductions allow
	// width 1 (plain float64 operands) through 4.
	OpSumExact Op = 32
	OpDotExact Op = 33
)

// FlagReduceFinal marks the last chunk of a streaming reduction.
// Reduction requests reuse the M header field as a flags word; all
// other M bits must be zero.
const FlagReduceFinal = 1

// FlagReduceRaw, valid only together with FlagReduceFinal, asks the
// server to answer the final chunk with the raw serialized
// superaccumulator state (exact.EncodeFloats — ReduceRawElems float64
// words) instead of the rounded width-w expansion. This is the cluster
// hook: a proxy that shards one reduction's chunk stream across
// backends collects each shard's raw accumulator, merges them with
// exact.Accumulator.Merge (exact, order-independent), and rounds once
// — bit-identical to a single-server fold of the same chunks.
const FlagReduceRaw = 2

// MaxProxyHops bounds the proxy hop count a request may carry; a frame
// whose hop byte exceeds it is rejected as malformed (the loop guard
// for misconfigured proxy tiers — see Request.Hops).
const MaxProxyHops = 3

// ReduceRawElems is the float64 word count of a raw reduction result:
// the serialized superaccumulator a FlagReduceRaw final chunk returns.
// It must equal exact.EncodedWords — serve/server asserts the equality
// at compile time, so the protocol package itself stays free of any
// dependency on the accumulator's layout.
const ReduceRawElems = 137

// Scalar reports whether op is one of the elementwise scalar operations
// (the ones the server's batching scheduler may coalesce across
// requests): the arithmetic ops and the transcendental family.
func (op Op) Scalar() bool { return (op >= OpAdd && op <= OpSqrt) || op.Math() }

// Math reports whether op is one of the transcendental elementwise
// operations (OpExp..OpHypot). Math ops are Scalar — batched through
// the same lanes — but execute on the scalar mf kernels instead of the
// generated lane networks.
func (op Op) Math() bool { return op >= OpExp && op <= OpHypot }

// Unary reports whether op takes a single operand slab: Sqrt and every
// math op except the binary Pow/Atan2/Hypot.
func (op Op) Unary() bool {
	return op == OpSqrt || (op.Math() && op < OpPow)
}

// Reduction reports whether op is a streaming exact reduction (chunked
// requests folded into a per-(connection, ID) superaccumulator).
func (op Op) Reduction() bool { return op == OpSumExact || op == OpDotExact }

// Valid reports whether op is a known operation code.
func (op Op) Valid() bool {
	return op.Scalar() || (op >= OpAxpy && op <= OpGemm) || op.Reduction()
}

// opNames covers every valid op; String and ParseOp derive from it so
// the two can never drift apart.
var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpSqrt: "sqrt",
	OpAxpy: "axpy", OpDot: "dot", OpGemv: "gemv", OpGemm: "gemm",
	OpExp: "exp", OpExpm1: "expm1", OpExp2: "exp2",
	OpLog: "log", OpLog1p: "log1p", OpLog2: "log2", OpLog10: "log10",
	OpSin: "sin", OpCos: "cos", OpTan: "tan",
	OpAsin: "asin", OpAcos: "acos", OpAtan: "atan",
	OpSinh: "sinh", OpCosh: "cosh", OpTanh: "tanh",
	OpCbrt: "cbrt", OpPow: "pow", OpAtan2: "atan2", OpHypot: "hypot",
	OpSumExact: "sumexact", OpDotExact: "dotexact",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ParseOp is the inverse of Op.String, for CLI flag parsing.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown op %q", s)
}

// Status is the response disposition.
type Status uint8

const (
	StatusOK Status = 0
	// StatusDeadlineExceeded: the request's deadline passed before the
	// server completed (or started) it; no result is included.
	StatusDeadlineExceeded Status = 1
	// StatusOverloaded: the server's bounded queue was full (or it is
	// draining); retry after the hinted delay.
	StatusOverloaded Status = 2
	// StatusBadRequest: the frame was well-formed but semantically
	// invalid (unknown op, bad width, inconsistent sizes).
	StatusBadRequest Status = 3
	// StatusInternal: the server failed unexpectedly.
	StatusInternal Status = 4
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDeadlineExceeded:
		return "deadline-exceeded"
	case StatusOverloaded:
		return "overloaded"
	case StatusBadRequest:
		return "bad-request"
	case StatusInternal:
		return "internal"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Framing errors. Read-side failures wrap one of these (or an underlying
// I/O error); any of them poisons the connection byte stream, so callers
// should close the connection rather than attempt to resynchronize.
var (
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported protocol version")
	ErrFrameType = errors.New("wire: unexpected frame type")
	ErrTooLarge  = errors.New("wire: frame exceeds MaxPayload")
	ErrMalformed = errors.New("wire: malformed payload")
	// ErrChecksum: the frame's CRC32C trailer did not match its contents.
	// The frame was corrupted in flight (or the peer is broken); nothing
	// decoded from it can be trusted and the connection must be closed.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
)

// Request is one decoded request frame. Slabs are flat component arrays:
// expansion i of a width-w slab occupies s[i*w : (i+1)*w], leading
// component first (mf's canonical component order).
type Request struct {
	ID       uint64
	Deadline time.Time // zero = no deadline
	Op       Op
	Width    int // expansion width: 2, 3, or 4 (reductions also allow 1)
	Count    int // scalar: elements; axpy/dot: n; gemv: rows n; gemm: n; reductions: chunk elements
	M        int // gemv: columns; reductions: flags (FlagReduceFinal | FlagReduceRaw); 0 otherwise
	Hops     int // proxy hops taken so far (0..MaxProxyHops; each proxy tier increments)

	Alpha []float64 // axpy only: one expansion (Width components)
	X     []float64 // first operand slab
	Y     []float64 // second operand slab (empty for unary ops)
}

// Response is one decoded response frame.
type Response struct {
	ID           uint64
	Status       Status
	RetryAfterMs uint32
	Data         []float64 // result slab; empty unless Status == StatusOK
}

// maxElems bounds the component count of any single slab: a frame's
// payload caps at MaxPayload bytes and each component costs 8, so no
// slab can legitimately carry more. Enforcing it inside slabElems —
// before each partial product grows — is what keeps attacker-controlled
// count/m fields from overflowing the size arithmetic.
const maxElems = MaxPayload / 8

// slabElems returns the product of dims, rejecting any product that
// exceeds maxElems. The bound check runs before each multiplication, so
// the product can never overflow (or wrap negative) on the way up.
func slabElems(dims ...int) (int, error) {
	n := 1
	for _, d := range dims {
		if d == 0 {
			return 0, nil
		}
		if n > maxElems/d {
			return 0, fmt.Errorf("%w: slab dimensions %v exceed frame capacity", ErrMalformed, dims)
		}
		n *= d
	}
	return n, nil
}

// ReqElems returns the expected component counts (len of X, Y, Alpha)
// for a request with the given shape. It returns an error for unknown
// ops, invalid widths/dimensions, and shapes whose slabs could not fit
// in a single frame (so hostile count/m values are rejected here rather
// than overflowing downstream size computations).
func ReqElems(op Op, width, count, m int) (x, y, alpha int, err error) {
	minWidth := 2
	if op.Reduction() {
		minWidth = 1 // plain float64 operands
	}
	if width < minWidth || width > 4 {
		return 0, 0, 0, fmt.Errorf("%w: width %d (want %d..4)", ErrMalformed, width, minWidth)
	}
	if count < 0 || m < 0 {
		return 0, 0, 0, fmt.Errorf("%w: negative dimension", ErrMalformed)
	}
	switch {
	case op.Reduction():
		n, err := slabElems(count, width)
		if err != nil {
			return 0, 0, 0, err
		}
		if op == OpDotExact {
			return n, n, 0, nil
		}
		return n, 0, 0, nil
	case op.Scalar(), op == OpAxpy, op == OpDot:
		n, err := slabElems(count, width)
		if err != nil {
			return 0, 0, 0, err
		}
		switch {
		case op.Unary():
			return n, 0, 0, nil
		case op == OpAxpy:
			return n, n, width, nil
		default:
			return n, n, 0, nil
		}
	case op == OpGemv:
		nx, err := slabElems(count, m, width)
		if err != nil {
			return 0, 0, 0, err
		}
		ny, err := slabElems(m, width)
		if err != nil {
			return 0, 0, 0, err
		}
		return nx, ny, 0, nil
	case op == OpGemm:
		n, err := slabElems(count, count, width)
		if err != nil {
			return 0, 0, 0, err
		}
		return n, n, 0, nil
	}
	return 0, 0, 0, fmt.Errorf("%w: unknown op %d", ErrMalformed, op)
}

// RespElems returns the component count of a successful response's Data
// slab for a request with the given shape.
func RespElems(op Op, width, count, m int) int {
	switch op {
	case OpSumExact, OpDotExact:
		// Only the final chunk of a streaming reduction carries a result;
		// earlier chunks are acknowledged with an empty OK. A raw final
		// carries the serialized accumulator instead of the rounded
		// expansion.
		if m&FlagReduceFinal != 0 {
			if m&FlagReduceRaw != 0 {
				return ReduceRawElems
			}
			return width
		}
		return 0
	case OpDot:
		return width
	case OpGemv:
		return count * width
	case OpGemm:
		return count * count * width
	default: // scalar elementwise and axpy: one result per input element
		return count * width
	}
}

// Validate checks the request's shape: known op, supported width, and
// slab lengths exactly matching the op's geometry.
func (r *Request) Validate() error {
	if !r.Op.Valid() {
		return fmt.Errorf("%w: unknown op %d", ErrMalformed, r.Op)
	}
	if r.Hops < 0 || r.Hops > MaxProxyHops {
		// The loop guard: every proxy tier increments the hop byte, so a
		// request cycling through a misconfigured proxy ring trips this
		// bound instead of orbiting forever.
		return fmt.Errorf("%w: proxy hop count %d exceeds MaxProxyHops %d", ErrMalformed, r.Hops, MaxProxyHops)
	}
	if r.Op.Reduction() && r.M&^(FlagReduceFinal|FlagReduceRaw) != 0 {
		return fmt.Errorf("%w: unknown reduction flags %#x", ErrMalformed, r.M)
	}
	if r.Op.Reduction() && r.M&FlagReduceRaw != 0 && r.M&FlagReduceFinal == 0 {
		// Raw output is a property of the final fold-down; a non-final
		// chunk asking for it is a confused (or hostile) peer.
		return fmt.Errorf("%w: FlagReduceRaw on a non-final reduction chunk", ErrMalformed)
	}
	if r.M != 0 && r.Op != OpGemv && !r.Op.Reduction() {
		// M is gemv's column count and the reductions' flags word; any
		// other op carrying one is a malformed (or hostile) frame.
		return fmt.Errorf("%w: %s with nonzero m %d", ErrMalformed, r.Op, r.M)
	}
	nx, ny, na, err := ReqElems(r.Op, r.Width, r.Count, r.M)
	if err != nil {
		return err
	}
	if len(r.X) != nx || len(r.Y) != ny || len(r.Alpha) != na {
		return fmt.Errorf("%w: %s width=%d count=%d m=%d: slab lengths x=%d y=%d alpha=%d, want %d/%d/%d",
			ErrMalformed, r.Op, r.Width, r.Count, r.M, len(r.X), len(r.Y), len(r.Alpha), nx, ny, na)
	}
	return nil
}
