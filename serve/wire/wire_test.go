package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	dl := time.Unix(0, 1234567890123456789)
	cases := []Request{
		{ID: 1, Op: OpAdd, Width: 2, Count: 2,
			X: []float64{1, 1e-20, 3, -4e-18}, Y: []float64{2, 0, -3, 0}},
		{ID: 2, Deadline: dl, Op: OpSqrt, Width: 3, Count: 1,
			X: []float64{2, 1e-17, -1e-34}},
		{ID: 3, Op: OpAxpy, Width: 4, Count: 1,
			Alpha: []float64{1.5, 0, 0, 0},
			X:     []float64{1, 0, 0, 0}, Y: []float64{2, 0, 0, 0}},
		{ID: 4, Op: OpDot, Width: 2, Count: 3,
			X: []float64{1, 0, 2, 0, 3, 0}, Y: []float64{4, 0, 5, 0, 6, 0}},
		{ID: 5, Op: OpGemv, Width: 2, Count: 2, M: 3,
			X: make([]float64, 2*3*2), Y: make([]float64, 3*2)},
		{ID: 6, Op: OpGemm, Width: 3, Count: 2,
			X: make([]float64, 4*3), Y: make([]float64, 4*3)},
	}
	for _, rc := range cases {
		rc := rc
		t.Run(rc.Op.String(), func(t *testing.T) {
			if err := rc.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteRequest(&buf, &rc); err != nil {
				t.Fatalf("WriteRequest: %v", err)
			}
			got, err := ReadRequest(&buf)
			if err != nil {
				t.Fatalf("ReadRequest: %v", err)
			}
			if got.ID != rc.ID || got.Op != rc.Op || got.Width != rc.Width ||
				got.Count != rc.Count || got.M != rc.M || !got.Deadline.Equal(rc.Deadline) {
				t.Fatalf("header mismatch: got %+v want %+v", got, rc)
			}
			for name, pair := range map[string][2][]float64{
				"x": {got.X, rc.X}, "y": {got.Y, rc.Y}, "alpha": {got.Alpha, rc.Alpha},
			} {
				if len(pair[0]) != len(pair[1]) {
					t.Fatalf("%s: len %d want %d", name, len(pair[0]), len(pair[1]))
				}
				for i := range pair[0] {
					if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
						t.Fatalf("%s[%d]: bits %x want %x", name, i,
							math.Float64bits(pair[0][i]), math.Float64bits(pair[1][i]))
					}
				}
			}
			if buf.Len() != 0 {
				t.Fatalf("trailing bytes after decode: %d", buf.Len())
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 9, Status: StatusOK, Data: []float64{1, -0.0, math.Inf(1), math.NaN()}},
		{ID: 10, Status: StatusOverloaded, RetryAfterMs: 250},
		{ID: 11, Status: StatusDeadlineExceeded},
	}
	for _, rc := range cases {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, &rc); err != nil {
			t.Fatalf("WriteResponse: %v", err)
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("ReadResponse: %v", err)
		}
		if got.ID != rc.ID || got.Status != rc.Status || got.RetryAfterMs != rc.RetryAfterMs {
			t.Fatalf("got %+v want %+v", got, rc)
		}
		for i := range rc.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(rc.Data[i]) {
				t.Fatalf("data[%d]: bits differ", i)
			}
		}
	}
}

// TestReadErrors drives each framing failure mode and checks the typed
// sentinel comes back: bad magic, wrong version, wrong frame type, an
// oversized length field, a truncated body, and a size/op mismatch.
func TestReadErrors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		req := Request{ID: 1, Op: OpAdd, Width: 2, Count: 1,
			X: []float64{1, 0}, Y: []float64{2, 0}}
		if err := WriteRequest(&buf, &req); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	t.Run("magic", func(t *testing.T) {
		b := valid()
		b[0] = 'X'
		if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrMagic) {
			t.Fatalf("err = %v, want ErrMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		b := valid()
		b[2] = 99
		if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("frame-type", func(t *testing.T) {
		b := valid()
		if _, err := ReadResponse(bytes.NewReader(b)); !errors.Is(err, ErrFrameType) {
			t.Fatalf("err = %v, want ErrFrameType", err)
		}
	})
	t.Run("too-large", func(t *testing.T) {
		b := valid()
		binary.LittleEndian.PutUint32(b[4:], MaxPayload+1)
		if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v, want ErrTooLarge", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		b := valid()
		if _, err := ReadRequest(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
		}
	})
	t.Run("size-mismatch", func(t *testing.T) {
		b := valid()
		b[HeaderSize+1] = 3 // claim width 3; payload still sized for width 2
		if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v, want ErrMalformed", err)
		}
	})
	t.Run("dimension-overflow", func(t *testing.T) {
		// Hostile count/m values whose element-count products used to wrap
		// int64 (negative or back to zero) and slip past the payload-length
		// check: the frame must come back ErrMalformed, never panic.
		craft := func(op Op, width byte, count, m uint32) []byte {
			b := make([]byte, HeaderSize+reqFixed)
			b[0], b[1], b[2], b[3] = magic0, magic1, Version, frameRequest
			binary.LittleEndian.PutUint32(b[4:], reqFixed)
			b[HeaderSize] = byte(op)
			b[HeaderSize+1] = width
			binary.LittleEndian.PutUint32(b[HeaderSize+4:], count)
			binary.LittleEndian.PutUint32(b[HeaderSize+8:], m)
			return b
		}
		for _, c := range []struct {
			name  string
			frame []byte
		}{
			{"gemv-wrap-negative", craft(OpGemv, 4, 0xFFFFFFFF, 0x40000000)},
			{"gemm-wrap-zero", craft(OpGemm, 4, 1<<31, 0)},
			{"scalar-over-frame", craft(OpAdd, 4, 1<<29, 0)},
		} {
			if _, err := ReadRequest(bytes.NewReader(c.frame)); !errors.Is(err, ErrMalformed) {
				t.Errorf("%s: err = %v, want ErrMalformed", c.name, err)
			}
		}
	})
	t.Run("huge-length-claim", func(t *testing.T) {
		// A header claiming a MaxPayload body for a tiny request must be
		// rejected from the fixed prefix alone (ErrMalformed), not by
		// allocating the claimed payload and failing the body read
		// (which would surface as ErrUnexpectedEOF here).
		b := valid()[:HeaderSize+reqFixed]
		binary.LittleEndian.PutUint32(b[4:], MaxPayload)
		if _, err := ReadRequest(bytes.NewReader(b)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("err = %v, want ErrMalformed before body allocation", err)
		}
	})
	t.Run("bad-width", func(t *testing.T) {
		r := Request{Op: OpAdd, Width: 5, Count: 1, X: make([]float64, 5), Y: make([]float64, 5)}
		if err := r.Validate(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("Validate = %v, want ErrMalformed", err)
		}
	})
	t.Run("bad-op", func(t *testing.T) {
		r := Request{Op: 42, Width: 2, Count: 1}
		if err := r.Validate(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("Validate = %v, want ErrMalformed", err)
		}
	})
}

func TestOpParse(t *testing.T) {
	// Walk the whole code space so every Valid op — including the
	// transcendental block — round-trips through String/ParseOp.
	n := 0
	for op := Op(1); op < Op(255); op++ {
		if !op.Valid() {
			continue
		}
		n++
		back, err := ParseOp(op.String())
		if err != nil || back != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), back, err)
		}
	}
	if want := 5 + 4 + 20 + 2; n != want {
		t.Fatalf("walked %d valid ops, want %d", n, want)
	}
	if _, err := ParseOp("nope"); err == nil {
		t.Fatal("ParseOp accepted garbage")
	}
}

func TestMathOpPredicates(t *testing.T) {
	for op := OpExp; op <= OpHypot; op++ {
		if !op.Math() || !op.Scalar() || !op.Valid() {
			t.Errorf("%s: Math/Scalar/Valid = %v/%v/%v, want all true", op, op.Math(), op.Scalar(), op.Valid())
		}
		if op.Reduction() {
			t.Errorf("%s: Reduction() = true", op)
		}
		binary := op == OpPow || op == OpAtan2 || op == OpHypot
		if op.Unary() == binary {
			t.Errorf("%s: Unary() = %v, want %v", op, op.Unary(), !binary)
		}
		// Unary math: X only, count·width components. Binary: X and Y.
		nx, ny, na, err := ReqElems(op, 3, 5, 0)
		if err != nil || na != 0 || nx != 15 {
			t.Errorf("%s: ReqElems = %d/%d/%d, %v", op, nx, ny, na, err)
		}
		if wantY := 0; !binary {
			if ny != wantY {
				t.Errorf("%s: unary op wants no Y slab, got %d", op, ny)
			}
		} else if ny != 15 {
			t.Errorf("%s: binary op Y slab = %d, want 15", op, ny)
		}
		if got := RespElems(op, 3, 5, 0); got != 15 {
			t.Errorf("%s: RespElems = %d, want 15", op, got)
		}
		// M is meaningless for math ops; a frame carrying one is hostile.
		req := Request{Op: op, Width: 3, Count: 1, M: 1, X: make([]float64, 3)}
		if !op.Unary() {
			req.Y = make([]float64, 3)
		}
		if err := req.Validate(); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s with nonzero M: Validate = %v, want ErrMalformed", op, err)
		}
	}
	for _, op := range []Op{OpAdd, OpSqrt, OpAxpy, OpDot, OpGemv, OpGemm, OpSumExact, OpDotExact} {
		if op.Math() {
			t.Errorf("%s: Math() = true", op)
		}
	}
}

func TestRespElems(t *testing.T) {
	cases := []struct {
		op                 Op
		width, count, m, n int
	}{
		{OpAdd, 2, 7, 0, 14},
		{OpSqrt, 4, 3, 0, 12},
		{OpAxpy, 3, 5, 0, 15},
		{OpDot, 3, 5, 0, 3},
		{OpGemv, 2, 4, 6, 8},
		{OpGemm, 4, 3, 0, 36},
	}
	for _, c := range cases {
		if got := RespElems(c.op, c.width, c.count, c.m); got != c.n {
			t.Errorf("RespElems(%s, w=%d, c=%d, m=%d) = %d, want %d", c.op, c.width, c.count, c.m, got, c.n)
		}
	}
}
